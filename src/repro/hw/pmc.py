"""Per-core performance monitoring counters (PMCs).

The simulated hardware increments *true* event counts as the core executes;
readers observe those counts through a measurement layer that models the
per-family counter fidelity of real Xeons:

* a **systematic bias** per (core, event), drawn once per machine — event
  definitions over/under-count consistently (Section 4.4 footnote 6 notes
  Sandy Bridge counters are "less reliable", the paper's explanation for
  its larger emulation error);
* **white read noise** applied to each read delta;
* monotonicity is preserved (a real counter never runs backwards).

Only the events of Table 1 exist per family; programming or reading any
other event raises, mirroring a bad ``PERFEVTSEL`` programming.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.arch import ArchSpec
from repro.sim import Simulator


class PmcFile:
    """The PMC register file of one core."""

    def __init__(self, sim: Simulator, arch: ArchSpec, core_id: int):
        self.sim = sim
        self.arch = arch
        self.core_id = core_id
        self._valid_events = set(arch.counter_events.all_events())
        self._true: dict[str, float] = {name: 0.0 for name in self._valid_events}
        self._programmed: set[str] = set()
        # Measurement state per event: (true value at last read, last
        # reported value).
        self._read_state: dict[str, tuple[float, float]] = {}
        self._bias: dict[str, float] = {}
        sigma = arch.counter_fidelity.bias_sigma
        for name in sorted(self._valid_events):
            # The systematic miscount of an event is a *hardware property*
            # of the family — identical on every run of the same testbed
            # (which is why the paper's per-family error bands persist
            # across its 20 trials) — so it is derived deterministically
            # from (family, core, event), independent of the run seed.
            import random as _random
            import zlib as _zlib

            fingerprint = _zlib.crc32(
                f"pmc/{arch.name}/core{core_id}/{name}".encode("utf-8")
            )
            rng = _random.Random(fingerprint)
            self._bias[name] = 1.0 + rng.gauss(0.0, sigma)
        self._noise_rng = sim.random.stream(f"pmc-read-core{core_id}")
        #: Optional hook ``(core_id, event, value) -> value`` applied to
        #: the *reported* value only — the fault layer's stale-read and
        #: register-wrap seam.  Internal read state keeps the unfaulted
        #: truth, so faults never compound across reads.
        self.read_interceptor = None

    # ------------------------------------------------------------------
    # Programming (privileged; done by the Quartz kernel module)
    # ------------------------------------------------------------------
    def program(self, events: tuple[str, ...], *, privileged: bool) -> None:
        """Select the events this core's counters track."""
        if not privileged:
            raise HardwareError("programming PERFEVTSEL requires ring 0")
        for name in events:
            self._require_valid(name)
        self._programmed = set(events)

    @property
    def programmed_events(self) -> frozenset[str]:
        """Events currently selected."""
        return frozenset(self._programmed)

    # ------------------------------------------------------------------
    # Hardware side: true increments
    # ------------------------------------------------------------------
    def increment(self, event: str, delta: float) -> None:
        """Advance the true count of *event* (hardware side)."""
        self._require_valid(event)
        if delta < 0:
            raise HardwareError(f"counter {event} cannot decrease (delta={delta})")
        self._true[event] += delta

    def true_value(self, event: str) -> float:
        """The exact event count, bypassing measurement error (test hook)."""
        self._require_valid(event)
        return self._true[event]

    # ------------------------------------------------------------------
    # Software side: rdpmc-style reads
    # ------------------------------------------------------------------
    def read(self, event: str) -> float:
        """Read the counter as software sees it (bias + noise, monotonic).

        The *cost* of the read (rdpmc vs. PAPI trap) is charged by the
        counter backend in ``repro.quartz.counters``, not here.
        """
        self._require_valid(event)
        if event not in self._programmed:
            raise HardwareError(
                f"event {event} is not programmed on core {self.core_id}"
            )
        true_now = self._true[event]
        true_prev, reported_prev = self._read_state.get(event, (0.0, 0.0))
        delta = true_now - true_prev
        fidelity = self.arch.counter_fidelity
        observed_delta = delta * self._bias[event]
        if delta > 0 and fidelity.read_noise_sigma > 0:
            observed_delta *= 1.0 + self._noise_rng.gauss(
                0.0, fidelity.read_noise_sigma
            )
        reported = max(reported_prev, reported_prev + observed_delta)
        self._read_state[event] = (true_now, reported)
        if self.read_interceptor is not None:
            return self.read_interceptor(self.core_id, event, reported)
        return reported

    def _require_valid(self, event: str) -> None:
        if event not in self._valid_events:
            raise HardwareError(
                f"event {event!r} does not exist on {self.arch.name} "
                f"(Table 1 events: {sorted(self._valid_events)})"
            )
