"""The core execution engine.

A :class:`Core` turns instruction-level ops (:mod:`repro.ops`) into
simulated time, performance-counter increments, and memory-controller
traffic.  Execution is a generator driven by the OS layer; in-flight work
is *divisible*, so an :class:`~repro.sim.Interrupt` (a POSIX signal in the
modelled world) lands with instruction granularity: the core withdraws its
memory flow, accounts the completed fraction, and raises
:class:`OpInterrupted` carrying the remainder op for later resumption.

Timing model for a memory batch (see DESIGN.md):

* L1/L2 hits cost their access latency, divided by a hit-ILP factor
  (serial for pointer chases, pipelined otherwise);
* LLC hits and DRAM misses on the critical path are the per-level counts
  divided by the effective MLP (paper Section 2.2, Figure 2);
* an ``overlap`` factor hides memory wait under compute — the effect the
  paper flags in Section 6 as a residual model risk;
* DRAM bytes move through the (possibly thermally throttled) memory
  controller as a rate-capped flow, so bandwidth throttling stretches the
  batch and grows true stall cycles exactly as on metal.

The stall-cycle PMC (``CYCLE_ACTIVITY:STALLS_L2_PENDING``) accrues time the
core spends waiting on loads past L2 — including LLC hits, which is why
Quartz's Eq. (3) must apportion it between hits and misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import HardwareError
from repro.ops import (
    Commit,
    Compute,
    Flush,
    FlushOpt,
    MemBatch,
    Op,
    OpResult,
    PatternKind,
    Spin,
)
from repro.sim import Interrupt, Timeout
from repro.units import CACHE_LINE_BYTES

if TYPE_CHECKING:
    from repro.hw.cache import BatchProfile
    from repro.hw.machine import Machine
    from repro.os.thread import SimThread


class OpInterrupted(Exception):
    """An op was preempted by a signal.

    ``remainder`` is the op still to execute (None if effectively done);
    ``payload`` is the signal payload from the interrupt.
    """

    def __init__(self, remainder: Optional[Op], payload, elapsed_ns: float):
        super().__init__(f"op interrupted after {elapsed_ns} ns")
        self.remainder = remainder
        self.payload = payload
        self.elapsed_ns = elapsed_ns


@dataclass
class CoreStats:
    """Aggregate per-core accounting (test/validation hook)."""

    busy_ns: float = 0.0
    stall_ns: float = 0.0
    spin_ns: float = 0.0
    mem_accesses: float = 0.0
    dram_loads: float = 0.0
    interrupts_taken: int = 0


#: ILP divisor for L1/L2 hit latency when accesses are independent: with
#: two load ports an OOO core retires ~2 L1 hits per cycle, i.e. ~8
#: overlapped 4-cycle hits in flight.
_PIPELINED_HIT_ILP = 8.0
#: Cycles charged per posted store (store-buffer insertion).
_STORE_ISSUE_CYCLES = 0.25
#: Cycles charged for issuing a clflushopt (non-blocking).
_FLUSHOPT_ISSUE_CYCLES = 5.0


class Core:
    """One physical core of the simulated machine."""

    def __init__(self, machine: "Machine", core_id: int):
        self.machine = machine
        self.core_id = core_id
        self.socket = core_id // (machine.arch.cores_per_socket * machine.arch.smt)
        self.current_thread: Optional["SimThread"] = None
        self.stats = CoreStats()

    # ------------------------------------------------------------------
    # Timestamp counter
    # ------------------------------------------------------------------
    def tsc_ns(self) -> float:
        """Invariant TSC expressed in ns (rdtscp / nominal frequency)."""
        return self.machine.sim.now

    def tsc_cycles(self) -> float:
        """Invariant TSC in nominal cycles (what rdtscp returns)."""
        return self.machine.sim.now * self.machine.arch.freq_ghz

    def frequency_ghz(self) -> float:
        """Current effective frequency (DVFS-aware)."""
        return self.machine.dvfs.frequency_ghz(self.core_id, self.machine.sim.now)

    # ------------------------------------------------------------------
    # Op execution
    # ------------------------------------------------------------------
    def execute(self, thread: "SimThread", op: Op):
        """Execute *op* on behalf of *thread* (generator).

        Returns an :class:`OpResult`; raises :class:`OpInterrupted` when a
        signal preempts the op.
        """
        if isinstance(op, Compute):
            return (yield from self._execute_compute(op))
        if isinstance(op, Spin):
            return (yield from self._execute_spin(op))
        if isinstance(op, MemBatch):
            return (yield from self._execute_membatch(op))
        if isinstance(op, Flush):
            return (yield from self._execute_flush(op))
        if isinstance(op, FlushOpt):
            return (yield from self._execute_flushopt(thread, op))
        if isinstance(op, Commit):
            return (yield from self._execute_commit(thread, op))
        raise HardwareError(f"core cannot execute op {op!r}")

    # -- compute and spin ------------------------------------------------
    def _execute_compute(self, op: Compute):
        duration = op.cycles / self.frequency_ghz()
        start = self.machine.sim.now
        try:
            yield Timeout(duration)
        except Interrupt as intr:
            elapsed = self.machine.sim.now - start
            self.stats.busy_ns += elapsed
            self.stats.interrupts_taken += 1
            fraction = elapsed / duration if duration > 0 else 1.0
            remaining_cycles = op.cycles * max(0.0, 1.0 - fraction)
            remainder = Compute(remaining_cycles, op.label) if remaining_cycles > 0.5 else None
            raise OpInterrupted(remainder, intr.payload, elapsed) from None
        self.stats.busy_ns += duration
        return OpResult(op, duration)

    def _execute_spin(self, op: Spin):
        # Spin loops poll rdtscp, which is invariant: the duration is exact
        # wall time regardless of DVFS.
        start = self.machine.sim.now
        try:
            yield Timeout(op.duration_ns)
        except Interrupt as intr:
            elapsed = self.machine.sim.now - start
            self.stats.spin_ns += elapsed
            self.stats.interrupts_taken += 1
            remaining = op.duration_ns - elapsed
            remainder = Spin(remaining, op.label) if remaining > 0 else None
            raise OpInterrupted(remainder, intr.payload, elapsed) from None
        self.stats.spin_ns += op.duration_ns
        return OpResult(op, op.duration_ns)

    # -- memory batches -----------------------------------------------------
    def _membatch_timing(self, batch: MemBatch, profile: "BatchProfile"):
        """Return (compute_like_ns, mem_wait_ns, duration_min_ns)."""
        arch = self.machine.arch
        freq = self.frequency_ghz()
        compute_ns = batch.accesses * batch.compute_cycles_per_access / freq
        hit_ilp = 1.0 if batch.pattern is PatternKind.CHASE else _PIPELINED_HIT_ILP
        l12_ns = (
            profile.l1_hits * arch.l1_lat_ns + profile.l2_hits * arch.l2_lat_ns
        ) / hit_ilp
        if batch.is_store:
            # Posted writes: the core only pays issue cost; drain time is
            # bandwidth-bound and enforced by the flow below.
            issue_ns = batch.accesses * _STORE_ISSUE_CYCLES / freq
            compute_like = compute_ns + issue_ns
            return compute_like, 0.0, compute_like
        dram_lat = self.machine.dram_latency_ns(self.socket, batch.region.node)
        mem_wait = (
            profile.serialized_l3_hits * arch.l3_lat_ns
            + profile.serialized_dram_accesses * dram_lat
            + profile.tlb_walks * arch.tlb_walk_ns / profile.effective_mlp
        )
        compute_like = compute_ns + l12_ns
        overlap = batch.overlap if batch.overlap is not None else 0.0
        hidden = overlap * min(compute_like, mem_wait)
        duration_min = compute_like + mem_wait - hidden
        return compute_like, mem_wait, duration_min

    def _execute_membatch(self, batch: MemBatch):
        if batch.accesses == 0:
            return OpResult(batch, 0.0)
        profile = self.machine.cache_model(self.socket).resolve(batch)
        compute_like, _mem_wait, duration_min = self._membatch_timing(batch, profile)
        sim = self.machine.sim
        start = sim.now
        if profile.dram_bytes > 0:
            controller = self.machine.controller(batch.region.node)
            rate_cap = profile.dram_bytes / max(duration_min, 1e-9)
            flow = controller.submit(
                profile.dram_bytes,
                rate_cap,
                label=batch.label or "membatch",
                kind="write" if batch.is_store else "read",
            )
            try:
                yield flow.done
            except Interrupt as intr:
                controller.withdraw(flow)
                fraction = flow.fraction_done
                self._account_membatch(
                    batch, profile, fraction, sim.now - start, compute_like
                )
                raise OpInterrupted(
                    batch.split_remainder(fraction), intr.payload, sim.now - start
                ) from None
        else:
            try:
                yield Timeout(duration_min)
            except Interrupt as intr:
                elapsed = sim.now - start
                fraction = elapsed / duration_min if duration_min > 0 else 1.0
                self._account_membatch(batch, profile, fraction, elapsed, compute_like)
                raise OpInterrupted(
                    batch.split_remainder(fraction), intr.payload, elapsed
                ) from None
        elapsed = sim.now - start
        self._account_membatch(batch, profile, 1.0, elapsed, compute_like)
        return OpResult(batch, elapsed)

    def _account_membatch(
        self,
        batch: MemBatch,
        profile: "BatchProfile",
        fraction: float,
        elapsed_ns: float,
        compute_like_ns: float,
    ) -> None:
        """Charge PMCs and stats for the completed *fraction* of a batch."""
        if fraction < 1.0:
            self.stats.interrupts_taken += 1
        events = self.machine.arch.counter_events
        pmc = self.machine.pmc(self.core_id)
        stall_ns = 0.0
        if not batch.is_store:
            stall_ns = max(0.0, elapsed_ns - fraction * compute_like_ns)
        stall_cycles = stall_ns * self.frequency_ghz()
        pmc.increment(events.l2_stalls, stall_cycles)
        pmc.increment(events.l3_hit, fraction * profile.pmc_l3_hits)
        dram_loads = fraction * profile.pmc_dram_loads
        if events.has_local_remote_split:
            if batch.region.node == self.socket:
                pmc.increment(events.l3_miss_local, dram_loads)
            else:
                pmc.increment(events.l3_miss_remote, dram_loads)
        if events.l3_miss_combined is not None:
            pmc.increment(events.l3_miss_combined, dram_loads)
        self.stats.busy_ns += elapsed_ns
        self.stats.stall_ns += stall_ns
        self.stats.mem_accesses += fraction * batch.accesses
        self.stats.dram_loads += dram_loads

    # -- persistent-memory line flushes -----------------------------------
    def _flush_latency_ns(self, node: int) -> float:
        """Time for a line writeback to reach the home memory of *node*."""
        return self.machine.dram_latency_ns(self.socket, node)

    def _execute_flush(self, op: Flush):
        """clflush: synchronous line writebacks (serialized)."""
        latency = self._flush_latency_ns(op.region.node)
        duration = latency * op.lines
        controller = self.machine.controller(op.region.node)
        nbytes = op.lines * CACHE_LINE_BYTES
        controller.submit(
            nbytes, nbytes / max(duration, 1e-9), label="clflush", kind="write"
        )
        start = self.machine.sim.now
        try:
            yield Timeout(duration)
        except Interrupt as intr:
            elapsed = self.machine.sim.now - start
            fraction = elapsed / duration if duration > 0 else 1.0
            done_lines = int(op.lines * fraction)
            remaining = op.lines - done_lines
            remainder = (
                Flush(
                    op.region,
                    remaining,
                    op.label,
                    line=None if op.line is None else op.line + done_lines,
                )
                if remaining
                else None
            )
            self.stats.busy_ns += elapsed
            self.stats.interrupts_taken += 1
            raise OpInterrupted(remainder, intr.payload, elapsed) from None
        self.stats.busy_ns += duration
        return OpResult(op, duration)

    def _execute_flushopt(self, thread: "SimThread", op: FlushOpt):
        """clflushopt: post the writeback, do not stall."""
        latency = self._flush_latency_ns(op.region.node)
        issue_ns = _FLUSHOPT_ISSUE_CYCLES * op.lines / self.frequency_ghz()
        controller = self.machine.controller(op.region.node)
        nbytes = op.lines * CACHE_LINE_BYTES
        controller.submit(
            nbytes, nbytes / max(latency, 1e-9), label="clflushopt", kind="write"
        )
        completion = self.machine.sim.now + issue_ns + latency * 1.0
        thread.outstanding_flushes.append(completion)
        yield Timeout(issue_ns)
        self.stats.busy_ns += issue_ns
        return OpResult(op, issue_ns)

    def _execute_commit(self, thread: "SimThread", op: Commit):
        """pcommit: drain all outstanding optimized flushes."""
        now = self.machine.sim.now
        deadline = max(thread.outstanding_flushes, default=now)
        thread.outstanding_flushes.clear()
        wait = max(0.0, deadline - now)
        if wait > 0:
            yield Timeout(wait)
        self.stats.busy_ns += wait
        self.stats.stall_ns += wait
        return OpResult(op, wait)
