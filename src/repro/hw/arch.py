"""Processor architecture specifications for the paper's three testbeds.

Section 4.1 of the paper evaluates Quartz on three dual-socket machines:

* Intel Xeon E5-2450 (**Sandy Bridge**), 2 x 8 two-way HT cores @ 2.1 GHz,
  local/remote DRAM latency 97/162 ns;
* Intel Xeon E5-2660 v2 (**Ivy Bridge**), 2 x 10 cores @ 2.2 GHz, 87/176 ns;
* Intel Xeon E5-2650 v3 (**Haswell**), 2 x 10 cores @ 2.3 GHz, 120/175 ns.

Table 1 lists the per-family performance events Quartz programs, and
Table 2 the measured latency ranges.  Both are reproduced here verbatim as
data.  The per-family *counter fidelity* parameters model footnote 6 of
Section 4.4 ("the counters available in earlier Intel Sandy Bridge
processor family are less reliable"), which is the paper's explanation for
Sandy Bridge's larger emulation errors (up to 9% vs. 2% on Ivy Bridge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import UnsupportedFeatureError
from repro.units import KIB, MIB, ClockDomain


@dataclass(frozen=True)
class CounterEventSet:
    """The hardware performance events Quartz uses on one family (Table 1).

    ``l3_miss_local``/``l3_miss_remote`` are ``None`` on Sandy Bridge, which
    only offers a combined LLC-miss event — the reason the two-memory
    emulation mode (Section 3.3) needs Ivy Bridge or Haswell.
    """

    l2_stalls: str
    l3_hit: str
    l3_miss_combined: Optional[str] = None
    l3_miss_local: Optional[str] = None
    l3_miss_remote: Optional[str] = None

    @property
    def has_local_remote_split(self) -> bool:
        """True if LLC misses can be attributed to local vs. remote DRAM."""
        return self.l3_miss_local is not None and self.l3_miss_remote is not None

    def all_events(self) -> tuple[str, ...]:
        """Every event name in this set, in programming order."""
        events = [self.l2_stalls, self.l3_hit]
        for name in (self.l3_miss_combined, self.l3_miss_local, self.l3_miss_remote):
            if name is not None:
                events.append(name)
        return tuple(events)


@dataclass(frozen=True)
class CounterFidelity:
    """Systematic and random measurement error of a family's PMCs.

    ``bias_sigma`` is the standard deviation of a per-run, per-event
    systematic scale error (event definitions miscount consistently within
    a run); ``read_noise_sigma`` is white noise applied per read delta.
    """

    bias_sigma: float
    read_noise_sigma: float


@dataclass(frozen=True)
class LatencyRange:
    """Min/average/max measured access latency in ns (Table 2 rows)."""

    min_ns: float
    avg_ns: float
    max_ns: float

    def __post_init__(self) -> None:
        if not (self.min_ns <= self.avg_ns <= self.max_ns):
            raise ValueError(f"latency range out of order: {self}")


@dataclass(frozen=True)
class ArchSpec:
    """Everything the simulator needs to know about one processor family."""

    name: str
    family: str
    model: str
    freq_ghz: float
    sockets: int
    cores_per_socket: int
    smt: int
    l1d_bytes: int
    l2_bytes: int
    l3_bytes: int  # per socket (shared LLC)
    l1_lat_ns: float
    l2_lat_ns: float
    l3_lat_ns: float
    dram_local: LatencyRange
    dram_remote: LatencyRange
    memory_channels: int
    peak_bw_bytes_per_ns: float  # per socket, all channels
    mshr_count: int  # line-fill buffers => max memory-level parallelism
    dtlb_entries_4k: int
    #: Effective 2 MB-page TLB reach in entries, including the shared STLB
    #: and walk overlap; large enough that hugepage-backed arrays up to
    #: several GiB walk-free (why MemLat uses hugepages, Section 4.4).
    dtlb_entries_2m: int
    tlb_walk_ns: float
    prefetch_coverage: float  # fraction of sequential misses hidden by HW prefetch
    counter_events: CounterEventSet = field(repr=False)
    counter_fidelity: CounterFidelity = field(repr=False)

    @property
    def clock(self) -> ClockDomain:
        """The core clock domain (DVFS disabled)."""
        return ClockDomain(self.freq_ghz)

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    def dram_latency_ns(self, local: bool) -> float:
        """Average unloaded DRAM latency from Table 2."""
        return self.dram_local.avg_ns if local else self.dram_remote.avg_ns

    def require_local_remote_counters(self) -> None:
        """Raise unless this family can split LLC misses by home node."""
        if not self.counter_events.has_local_remote_split:
            raise UnsupportedFeatureError(
                f"{self.name} lacks separate local/remote LLC-miss events "
                "(Table 1); two-memory emulation requires Ivy Bridge or "
                "Haswell"
            )


SANDY_BRIDGE = ArchSpec(
    name="sandy-bridge",
    family="SandyBridge",
    model="Intel Xeon E5-2450",
    freq_ghz=2.1,
    sockets=2,
    cores_per_socket=8,
    smt=2,
    l1d_bytes=32 * KIB,
    l2_bytes=256 * KIB,
    l3_bytes=20 * MIB,
    l1_lat_ns=1.9,
    l2_lat_ns=5.7,
    l3_lat_ns=15.2,
    dram_local=LatencyRange(97.0, 97.0, 98.0),
    dram_remote=LatencyRange(158.0, 163.0, 165.0),
    memory_channels=3,
    peak_bw_bytes_per_ns=38.4,  # 3 x DDR3-1600
    mshr_count=10,
    dtlb_entries_4k=576,
    dtlb_entries_2m=4096,
    tlb_walk_ns=26.0,
    prefetch_coverage=0.80,
    counter_events=CounterEventSet(
        l2_stalls="CYCLE_ACTIVITY:STALLS_L2_PENDING",
        l3_hit="MEM_LOAD_UOPS_RETIRED:L3_HIT",
        l3_miss_combined="MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS",
    ),
    counter_fidelity=CounterFidelity(bias_sigma=0.040, read_noise_sigma=0.020),
)

IVY_BRIDGE = ArchSpec(
    name="ivy-bridge",
    family="IvyBridge",
    model="Intel Xeon E5-2660 v2",
    freq_ghz=2.2,
    sockets=2,
    cores_per_socket=10,
    smt=2,
    l1d_bytes=32 * KIB,
    l2_bytes=256 * KIB,
    l3_bytes=25 * MIB,
    l1_lat_ns=1.8,
    l2_lat_ns=5.5,
    l3_lat_ns=14.1,
    dram_local=LatencyRange(87.0, 87.0, 87.0),
    dram_remote=LatencyRange(172.0, 176.0, 185.0),
    memory_channels=4,
    peak_bw_bytes_per_ns=59.7,  # 4 x DDR3-1866
    mshr_count=10,
    dtlb_entries_4k=576,
    dtlb_entries_2m=4096,
    tlb_walk_ns=25.0,
    prefetch_coverage=0.82,
    counter_events=CounterEventSet(
        l2_stalls="CYCLE_ACTIVITY:STALLS_L2_PENDING",
        l3_hit="MEM_LOAD_UOPS_LLC_HIT_RETIRED:XSNP_NONE",
        l3_miss_local="MEM_LOAD_UOPS_LLC_MISS_RETIRED:LOCAL_DRAM",
        l3_miss_remote="MEM_LOAD_UOPS_LLC_MISS_RETIRED:REMOTE_DRAM",
    ),
    counter_fidelity=CounterFidelity(bias_sigma=0.008, read_noise_sigma=0.004),
)

HASWELL = ArchSpec(
    name="haswell",
    family="Haswell",
    model="Intel Xeon E5-2650 v3",
    freq_ghz=2.3,
    sockets=2,
    cores_per_socket=10,
    smt=2,
    l1d_bytes=32 * KIB,
    l2_bytes=256 * KIB,
    l3_bytes=25 * MIB,
    l1_lat_ns=1.7,
    l2_lat_ns=5.2,
    l3_lat_ns=15.0,
    dram_local=LatencyRange(120.0, 120.0, 120.0),
    dram_remote=LatencyRange(174.0, 175.0, 175.0),
    memory_channels=4,
    peak_bw_bytes_per_ns=68.0,  # 4 x DDR4-2133
    mshr_count=10,
    dtlb_entries_4k=576,
    dtlb_entries_2m=4096,
    tlb_walk_ns=24.0,
    prefetch_coverage=0.85,
    counter_events=CounterEventSet(
        l2_stalls="CYCLE_ACTIVITY:STALLS_L2_PENDING",
        l3_hit="MEM_LOAD_UOPS_L3_HIT_RETIRED:XSNP_NONE",
        l3_miss_local="MEM_LOAD_UOPS_L3_MISS_RETIRED:LOCAL_DRAM",
        l3_miss_remote="MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM",
    ),
    counter_fidelity=CounterFidelity(bias_sigma=0.025, read_noise_sigma=0.010),
)

#: The three testbeds of Section 4.1, in paper order.
ALL_ARCHS: tuple[ArchSpec, ...] = (SANDY_BRIDGE, IVY_BRIDGE, HASWELL)

_BY_NAME = {spec.name: spec for spec in ALL_ARCHS}
_ALIASES = {
    "sandy": "sandy-bridge",
    "sandybridge": "sandy-bridge",
    "ivy": "ivy-bridge",
    "ivybridge": "ivy-bridge",
    "hsw": "haswell",
}


def arch_by_name(name: str) -> ArchSpec:
    """Look up an architecture spec by name or common alias."""
    key = name.strip().lower().replace("_", "-")
    key = _ALIASES.get(key.replace("-", ""), _ALIASES.get(key, key))
    if key not in _BY_NAME:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown architecture {name!r}; known: {known}")
    return _BY_NAME[key]
