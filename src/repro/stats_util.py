"""Shared order-statistics helpers (nearest-rank percentiles).

The runner's per-run wall-time tail summary and the service layer's
latency histograms both report nearest-rank percentiles; this module is
the single definition of that rank arithmetic so the two cannot drift.

The convention is the classic nearest-rank estimator: the percentile of
a sample of ``count`` ordered values at ``fraction`` is the value at
(1-based) rank ``round(fraction * count)``, clamped into the sample.
It always returns an observed value (no interpolation), which keeps
every derived statistic exactly reproducible across platforms.
"""

from __future__ import annotations

from typing import Optional, Sequence


def nearest_rank_index(count: int, fraction: float) -> int:
    """The 0-based index of the nearest-rank percentile in a sorted sample.

    ``count`` is the sample size; ``fraction`` the percentile in [0, 1].
    The result is clamped to ``[0, count - 1]``, so any fraction is safe
    against a non-empty sample.  ``count`` must be positive.
    """
    if count <= 0:
        raise ValueError(f"sample count must be positive: {count}")
    return min(count - 1, max(0, round(fraction * count) - 1))


def percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of *values* (``None`` for an empty sample).

    Sorts a copy; the input order is irrelevant and unmodified.
    """
    if not values:
        return None
    ordered = sorted(values)
    return ordered[nearest_rank_index(len(ordered), fraction)]
