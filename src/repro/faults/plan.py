"""Declarative fault plans: what to perturb, how hard, and from which seed.

A :class:`FaultPlan` is the single description of one adversarial
configuration.  It is

* **declarative** — a frozen dataclass of primitives, picklable, so it
  travels unchanged into parallel runner workers;
* **seeded** — all injector randomness derives from ``(plan seed, run
  seed)``, so a faulted run is exactly as reproducible as an un-faulted
  one (the jobs-invariance guarantee extends to faulted grids);
* **recordable** — :meth:`FaultPlan.to_dict` is embedded in the exported
  :class:`~repro.validation.export.RunManifest`, so a faulted export
  names the perturbation that produced it.

The CLI spec grammar (``run --faults <spec>``) is semicolon-separated
clauses, each ``kind`` or ``kind(param=value, ...)``::

    seed(7); signal-delay(ns=2e6, p=1.0); timer-jitter(rel=0.01)

Supported kinds (targets in parentheses):

=====================  ===================================================
``timer-jitter``       relative jitter/drift on every scheduled delay
                       (``Simulator.schedule``); params ``rel``, ``drift``
``signal-delay``       delay monitor-signal delivery (``SimOS.post_signal``);
                       params ``ns``, ``p``
``signal-drop``        drop monitor signals outright; param ``p``
``monitor-miss``       the monitor thread skips a wake-up scan; param ``p``
``counter-stale``      a counter read returns the previously observed
                       value (``PmcFile.read``); param ``p``
``counter-wrap``       counters wrap modulo ``2**bits`` (overflow);
                       param ``bits``
``calib-perturb``      relative perturbation of calibrated latency and
                       bandwidth points; param ``rel``
``seed``               the fault seed; param ``value`` (or positional)
=====================  ===================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class FaultPlan:
    """One validated fault-injection configuration (see module docs)."""

    #: Seed mixed with each run's own seed to derive injector randomness.
    seed: int = 0
    #: Relative uniform jitter applied to every scheduled delay, in
    #: ``[0, 1)``: a delay ``d`` becomes ``d * (1 + drift + rel*U[-1,1])``.
    timer_jitter_rel: float = 0.0
    #: Constant multiplicative clock drift on scheduled delays, ``> -1``.
    timer_drift_rel: float = 0.0
    #: Extra delivery latency for epoch signals (simulated ns).
    signal_delay_ns: float = 0.0
    #: Probability a posted signal is delayed by ``signal_delay_ns``.
    signal_delay_p: float = 1.0
    #: Probability a posted signal is dropped (never delivered).
    signal_drop_p: float = 0.0
    #: Probability the monitor thread skips one wake-up scan entirely.
    monitor_miss_p: float = 0.0
    #: Probability a performance-counter read returns the stale (previous)
    #: observation instead of the fresh one.
    counter_stale_p: float = 0.0
    #: Counter register width in bits; reads wrap modulo ``2**bits``.
    counter_wrap_bits: Optional[int] = None
    #: Relative perturbation applied to calibrated latencies and the
    #: bandwidth table before the emulator attaches.
    calib_perturb_rel: float = 0.0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` on inconsistent settings."""
        for name in (
            "signal_delay_p", "signal_drop_p", "monitor_miss_p",
            "counter_stale_p",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a probability in [0, 1]: {value}"
                )
        if not 0.0 <= self.timer_jitter_rel < 1.0:
            raise FaultPlanError(
                "timer-jitter rel must be in [0, 1) so delays stay "
                f"non-negative: {self.timer_jitter_rel}"
            )
        if self.timer_drift_rel <= -1.0 + self.timer_jitter_rel:
            raise FaultPlanError(
                "timer drift would make delays negative: "
                f"drift={self.timer_drift_rel}, jitter={self.timer_jitter_rel}"
            )
        if self.signal_delay_ns < 0:
            raise FaultPlanError(
                f"signal-delay ns must be non-negative: {self.signal_delay_ns}"
            )
        if self.counter_wrap_bits is not None and not (
            8 <= self.counter_wrap_bits <= 64
        ):
            raise FaultPlanError(
                "counter-wrap bits must be in [8, 64]: "
                f"{self.counter_wrap_bits}"
            )
        if not 0.0 <= self.calib_perturb_rel < 0.5:
            raise FaultPlanError(
                "calib-perturb rel must be in [0, 0.5) so calibration "
                f"stays physical: {self.calib_perturb_rel}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when no injector would ever fire (seed alone is empty)."""
        return (
            self.timer_jitter_rel == 0.0
            and self.timer_drift_rel == 0.0
            and (self.signal_delay_ns == 0.0 or self.signal_delay_p == 0.0)
            and self.signal_drop_p == 0.0
            and self.monitor_miss_p == 0.0
            and self.counter_stale_p == 0.0
            and self.counter_wrap_bits is None
            and self.calib_perturb_rel == 0.0
        )

    def to_dict(self) -> dict:
        """JSON-safe form: only non-default fields, plus the seed.

        This is what the exported :class:`RunManifest` records — compact
        and stable, so a faulted export's digest pins the exact plan.
        """
        payload: dict = {"seed": self.seed}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name != "seed" and value != spec.default:
                payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields: {unknown}")
        try:
            return cls(**payload)
        except TypeError as error:
            raise FaultPlanError(f"malformed fault plan: {error}")

    # ------------------------------------------------------------------
    # The CLI spec grammar
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--faults`` spec string into a validated plan.

        Raises :class:`FaultPlanError` with an actionable message (the
        offending clause plus the supported kinds) on any defect.
        """
        values: dict = {}
        clauses = [clause.strip() for clause in spec.split(";")]
        clauses = [clause for clause in clauses if clause]
        if not clauses:
            raise FaultPlanError(
                "empty --faults spec; expected clauses like "
                f"'signal-delay(ns=2e6)' ({_supported_kinds()})"
            )
        for clause in clauses:
            kind, params = _parse_clause(clause)
            _apply_clause(values, clause, kind, params)
        try:
            return cls(**values)
        except FaultPlanError as error:
            raise FaultPlanError(f"invalid --faults spec: {error}")


#: Clause kind -> (param name -> FaultPlan field).  ``seed`` is special.
_KINDS: dict[str, dict[str, str]] = {
    "timer-jitter": {"rel": "timer_jitter_rel", "drift": "timer_drift_rel"},
    "signal-delay": {"ns": "signal_delay_ns", "p": "signal_delay_p"},
    "signal-drop": {"p": "signal_drop_p"},
    "monitor-miss": {"p": "monitor_miss_p"},
    "counter-stale": {"p": "counter_stale_p"},
    "counter-wrap": {"bits": "counter_wrap_bits"},
    "calib-perturb": {"rel": "calib_perturb_rel"},
}

_CLAUSE_RE = re.compile(r"^([a-z-]+)\s*(?:\((.*)\))?$")


def _supported_kinds() -> str:
    return "supported kinds: " + ", ".join(sorted(_KINDS) + ["seed"])


def _parse_clause(clause: str) -> tuple[str, dict[str, str]]:
    match = _CLAUSE_RE.match(clause)
    if match is None:
        raise FaultPlanError(
            f"malformed --faults clause {clause!r}; expected "
            f"'kind(param=value, ...)' ({_supported_kinds()})"
        )
    kind, body = match.group(1), match.group(2)
    params: dict[str, str] = {}
    if body is not None and body.strip():
        for item in body.split(","):
            item = item.strip()
            if "=" in item:
                key, _, raw = item.partition("=")
                params[key.strip()] = raw.strip()
            elif kind == "seed" and "value" not in params:
                params["value"] = item  # seed(7) positional shorthand
            else:
                raise FaultPlanError(
                    f"malformed parameter {item!r} in --faults clause "
                    f"{clause!r}; expected 'param=value'"
                )
    return kind, params


def _apply_clause(
    values: dict, clause: str, kind: str, params: dict[str, str]
) -> None:
    if kind == "seed":
        raw = params.get("value")
        if raw is None or set(params) - {"value"}:
            raise FaultPlanError(
                f"the seed clause takes exactly one value, e.g. 'seed(7)': "
                f"{clause!r}"
            )
        values["seed"] = _parse_number(clause, "seed", raw, integer=True)
        return
    mapping = _KINDS.get(kind)
    if mapping is None:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in --faults clause {clause!r}; "
            f"{_supported_kinds()}"
        )
    if not params:
        raise FaultPlanError(
            f"--faults clause {clause!r} needs parameters: "
            f"{', '.join(sorted(mapping))}"
        )
    for key, raw in params.items():
        field_name = mapping.get(key)
        if field_name is None:
            raise FaultPlanError(
                f"unknown parameter {key!r} for fault kind {kind!r} "
                f"(expected: {', '.join(sorted(mapping))})"
            )
        integer = field_name == "counter_wrap_bits"
        values[field_name] = _parse_number(clause, key, raw, integer=integer)


def _parse_number(clause: str, key: str, raw: str, integer: bool = False):
    try:
        value = float(raw)
        if integer:
            if value != int(value):
                raise ValueError("not an integer")
            return int(value)
        return value
    except ValueError:
        expected = "an integer" if integer else "a number"
        raise FaultPlanError(
            f"parameter {key}={raw!r} in --faults clause {clause!r} "
            f"is not {expected}"
        )
