"""Deterministic fault injection and runtime invariant checking.

See :mod:`repro.faults.plan` for the declarative :class:`FaultPlan` and
the CLI ``--faults`` grammar, :mod:`repro.faults.engine` for the seeded
injectors, :mod:`repro.faults.invariants` for the machine-checked
invariants, and :mod:`repro.faults.context` for propagation into
parallel runner workers.
"""

from repro.faults.context import (
    FaultContext,
    active_faults,
    clear_active_faults,
    get_active_faults,
    set_active_faults,
)
from repro.faults.engine import DROP_SIGNAL, FaultEngine, derive_seed
from repro.faults.invariants import InvariantMonitor
from repro.faults.plan import FaultPlan

__all__ = [
    "DROP_SIGNAL",
    "FaultContext",
    "FaultEngine",
    "FaultPlan",
    "derive_seed",
    "InvariantMonitor",
    "active_faults",
    "clear_active_faults",
    "get_active_faults",
    "set_active_faults",
]
