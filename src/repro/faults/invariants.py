"""Machine-checked runtime invariants for simulator and emulator runs.

The :class:`InvariantMonitor` attaches to the seams the fault layer also
uses — the simulator's dispatch observer and the epoch engine's close
observers — and audits every event against properties the paper only
argues informally:

* **clock-monotonicity** — simulated time never moves backwards;
* **fifo-tie-break** — events at equal times dispatch in scheduling
  order (the determinism guarantee of the kernel);
* **delay-conservation** — injected delay == Eq. 2 computed delay minus
  amortised overhead, with the carried excess accounted (§3.2);
* **pool-conservation / pool-non-negative** — the overhead pool evolves
  exactly by ``+overhead -amortised`` and never goes negative;
* **no-past-schedule** — no close ever produces a negative delay or spin;
* **split-proportionality** — a sync close's CS and out-of-CS shares sum
  to the split delay and follow the measured wall-time ratio (Fig. 4b);
* **tier-delay-conservation** — a multi-tier close's per-tier delay
  decomposition sums to the computed delay with no negative component.

Violations raise structured :class:`InvariantViolation` errors carrying
the epoch context, so a failure names the thread, trigger, and simulated
time where the accounting broke.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import InvariantViolation
from repro.quartz.epoch import EpochCloseInfo

if TYPE_CHECKING:
    from repro.quartz.emulator import Quartz
    from repro.sim import Simulator
    from repro.sim.events import ScheduledEvent

#: Relative tolerance for conservation checks: float summation error over
#: an epoch's worth of ns-scale arithmetic, far below any real breakage.
REL_TOL = 1e-9
ABS_TOL = 1e-6


class InvariantMonitor:
    """Audits one run; attach before the run, read :meth:`report` after."""

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.sim_checks = 0
        self.epoch_checks = 0
        self.violations: list[InvariantViolation] = []
        #: Longest epoch observed at close (grows under delayed monitor
        #: signals — the graceful-degradation demonstration).
        self.max_epoch_length_ns = 0.0
        self._last_time: Optional[float] = None
        self._last_seq: Optional[int] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_sim(self, sim: "Simulator") -> None:
        """Observe every dispatched event (monotonicity + FIFO order)."""
        sim.dispatch_observer = self._on_dispatch

    def attach_quartz(self, quartz: "Quartz") -> None:
        """Observe every epoch close (the accounting invariants)."""
        engine = quartz._engine
        if engine is None:
            raise InvariantViolation(
                "attach-order", "Quartz must be attached before the monitor"
            )
        engine.close_observers.append(self._on_close)

    def report(self) -> dict:
        """JSON-safe audit summary for outcomes and runner telemetry."""
        return {
            "sim_checks": self.sim_checks,
            "epoch_checks": self.epoch_checks,
            "violations": len(self.violations),
            "max_epoch_length_ns": self.max_epoch_length_ns,
        }

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _violate(self, invariant: str, message: str, context: dict) -> None:
        violation = InvariantViolation(invariant, message, context)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    def _on_dispatch(self, event: "ScheduledEvent") -> None:
        self.sim_checks += 1
        if self._last_time is not None and event.time < self._last_time:
            self._violate(
                "clock-monotonicity",
                "event dispatched before the previous event's time",
                {"time_ns": event.time, "previous_ns": self._last_time},
            )
        if (
            self._last_time is not None
            and event.time == self._last_time
            and self._last_seq is not None
            and event.seq <= self._last_seq
        ):
            self._violate(
                "fifo-tie-break",
                "equal-time events dispatched out of scheduling order",
                {"time_ns": event.time, "seq": event.seq,
                 "previous_seq": self._last_seq},
            )
        self._last_time = event.time
        self._last_seq = event.seq

    def _on_close(self, info: EpochCloseInfo) -> None:
        self.epoch_checks += 1
        if info.epoch_length_ns > self.max_epoch_length_ns:
            self.max_epoch_length_ns = info.epoch_length_ns
        context = {
            "time_ns": info.time_ns,
            "tid": info.tid,
            "thread": info.thread_name,
            "trigger": info.trigger.name,
        }
        tol = ABS_TOL + REL_TOL * (
            abs(info.delay_computed_ns) + abs(info.pool_before_ns)
            + abs(info.overhead_added_ns)
        )
        if (
            abs(info.injected_ns + info.amortized_ns - info.delay_computed_ns)
            > tol
        ):
            self._violate(
                "delay-conservation",
                "injected + amortised delay != Eq. 2 computed delay",
                {**context, "injected_ns": info.injected_ns,
                 "amortized_ns": info.amortized_ns,
                 "delay_computed_ns": info.delay_computed_ns},
            )
        expected_pool = (
            info.pool_before_ns + info.overhead_added_ns - info.amortized_ns
        )
        if abs(info.pool_after_ns - expected_pool) > tol:
            self._violate(
                "pool-conservation",
                "overhead pool did not evolve by +overhead -amortised",
                {**context, "pool_before_ns": info.pool_before_ns,
                 "pool_after_ns": info.pool_after_ns,
                 "overhead_added_ns": info.overhead_added_ns,
                 "amortized_ns": info.amortized_ns},
            )
        if info.pool_after_ns < -tol:
            self._violate(
                "pool-non-negative",
                "amortisation carry went negative",
                {**context, "pool_after_ns": info.pool_after_ns},
            )
        negatives = {
            name: value
            for name, value in (
                ("injected_ns", info.injected_ns),
                ("amortized_ns", info.amortized_ns),
                ("cs_share_ns", info.cs_share_ns),
                ("out_share_ns", info.out_share_ns),
            )
            if value is not None and value < -tol
        }
        if negatives:
            self._violate(
                "no-past-schedule",
                "an epoch close produced a negative delay or spin",
                {**context, **negatives},
            )
        self._check_split(info, context, tol)
        self._check_tier_delays(info, context, tol)

    def _check_tier_delays(
        self, info: EpochCloseInfo, context: dict, tol: float
    ) -> None:
        """Per-tier delay conservation (multi-tier closes only): the
        tier decomposition must sum to the computed delay, with no
        negative per-tier component."""
        if info.tier_delays_ns is None:
            return
        total = sum(info.tier_delays_ns)
        if abs(total - info.delay_computed_ns) > tol:
            self._violate(
                "tier-delay-conservation",
                "per-tier delays do not sum to the computed delay",
                {**context, "tier_delays_ns": list(info.tier_delays_ns),
                 "delay_computed_ns": info.delay_computed_ns},
            )
        for index, delay in enumerate(info.tier_delays_ns):
            if delay < -tol:
                self._violate(
                    "tier-delay-conservation",
                    f"tier {index} was assigned a negative delay",
                    {**context, "tier_index": index, "tier_delay_ns": delay},
                )

    def _check_split(
        self, info: EpochCloseInfo, context: dict, tol: float
    ) -> None:
        if info.split_delay_ns is None:
            return  # monitor/exit closes inject in place: nothing to split
        cs = info.cs_share_ns or 0.0
        out = info.out_share_ns or 0.0
        if abs(cs + out - info.split_delay_ns) > tol:
            self._violate(
                "split-conservation",
                "CS + out-of-CS shares do not sum to the split delay",
                {**context, "cs_share_ns": cs, "out_share_ns": out,
                 "split_delay_ns": info.split_delay_ns},
            )
        total_wall = info.cs_wall_ns + info.out_wall_ns
        if info.split_delay_ns <= ABS_TOL or total_wall <= 0.0:
            return
        expected_fraction = info.cs_wall_ns / total_wall
        actual_fraction = cs / info.split_delay_ns
        if abs(actual_fraction - expected_fraction) > 1e-6:
            self._violate(
                "split-proportionality",
                "CS share does not follow the measured wall-time ratio",
                {**context, "expected_fraction": expected_fraction,
                 "actual_fraction": actual_fraction},
            )
