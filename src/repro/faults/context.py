"""Process-wide fault context, propagated into parallel runner workers.

The CLI (or a test) activates a :class:`FaultContext` before invoking an
experiment driver; :func:`repro.validation.runner.run_specs` snapshots it
into every worker payload, so the context reaches pool workers under both
``fork`` and ``spawn`` start methods without relying on inherited module
state.  Clean code paths pay a single ``None`` check.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class FaultContext:
    """The active fault plan (if any) plus the invariant-checking flag."""

    plan: Optional[FaultPlan] = None
    check_invariants: bool = False

    @property
    def active(self) -> bool:
        """True when this context changes run behaviour at all."""
        return self.check_invariants or (
            self.plan is not None and not self.plan.is_empty
        )


_active: Optional[FaultContext] = None


def set_active_faults(
    plan: Optional[FaultPlan] = None, check_invariants: bool = False
) -> FaultContext:
    """Install the process-wide fault context and return it."""
    global _active
    context = FaultContext(plan=plan, check_invariants=check_invariants)
    _active = context if context.active else None
    return context


def get_active_faults() -> Optional[FaultContext]:
    """The currently active context, or None when runs are clean."""
    return _active


def clear_active_faults() -> None:
    """Deactivate fault injection and invariant checking."""
    global _active
    _active = None


@contextlib.contextmanager
def active_faults(
    plan: Optional[FaultPlan] = None, check_invariants: bool = False
) -> Iterator[FaultContext]:
    """Scoped activation for tests: restores the previous context."""
    global _active
    previous = _active
    try:
        yield set_active_faults(plan, check_invariants)
    finally:
        _active = previous
