"""The fault engine: seeded injectors attached to the model's seams.

One :class:`FaultEngine` serves one run.  It derives every stochastic
decision from ``(plan seed, run seed)`` through the same
:class:`~repro.sim.random.RandomStreams` machinery the simulator itself
uses, so faulted runs are exactly as deterministic as clean ones — the
foundation of the faulted jobs-invariance guarantee and of reproducible
fault exports.

Injection seams (each a first-class hook on the target object, installed
by :meth:`FaultEngine.install` and cleared by :meth:`uninstall`):

* ``Simulator.schedule_interceptor`` — timer jitter and clock drift on
  every scheduled delay;
* ``SimOS.signal_interceptor`` — delayed or dropped epoch signals (the
  monitor → application channel of Figure 5);
* ``PmcFile.read_interceptor`` — stale counter reads and register
  wrap/overflow;
* ``SimOS.fault_engine`` + the monitor loop — missed monitor wake-ups;
* :meth:`perturb_calibration` — perturbed latency/bandwidth calibration
  points, applied before the emulator attaches.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Union

from repro.faults.plan import FaultPlan
from repro.sim.random import RandomStreams

if TYPE_CHECKING:
    from repro.hw.machine import Machine
    from repro.os.system import SimOS
    from repro.quartz.calibration import CalibrationData
    from repro.sim import Simulator

#: Sentinel returned by the signal interceptor: swallow the signal.
DROP_SIGNAL = "drop"


def derive_seed(plan_seed: int, run_seed: int) -> int:
    """Mix a plan seed and a per-run seed into one stream seed.

    The foundation of jobs-invariance for every seeded injector — the
    fault engine and the crash injector both derive their private
    :class:`RandomStreams` through this exact mix, so any fan-out of runs
    reproduces the in-process decision sequence.
    """
    return (plan_seed * 1_000_003 + run_seed * 7_368_787 + 1) & 0x7FFFFFFF


class FaultEngine:
    """Instantiates a :class:`FaultPlan` against one run's objects."""

    def __init__(self, plan: FaultPlan, run_seed: int = 0):
        self.plan = plan
        self.run_seed = run_seed
        self._streams = RandomStreams(seed=derive_seed(plan.seed, run_seed))
        #: Injection counters by kind (only kinds that fired appear).
        self.injections: dict[str, int] = {}
        self._stale: dict[tuple[int, str], float] = {}
        self._sim: Optional["Simulator"] = None
        self._os: Optional["SimOS"] = None
        self._machine: Optional["Machine"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(
        self,
        sim: Optional["Simulator"] = None,
        machine: Optional["Machine"] = None,
        os: Optional["SimOS"] = None,
    ) -> None:
        """Attach the plan's active injectors to the given objects.

        ``machine`` implies its simulator; ``os`` enables the signal and
        monitor injectors (the Quartz-facing seams).  Passing only
        ``sim`` installs just the timer faults — the subset meaningful
        for un-emulated (Conf_2 / native) runs.
        """
        plan = self.plan
        if machine is not None and sim is None:
            sim = machine.sim
        self._sim, self._machine, self._os = sim, machine, os
        if sim is not None and (
            plan.timer_jitter_rel > 0 or plan.timer_drift_rel != 0.0
        ):
            sim.schedule_interceptor = self._intercept_delay
        if machine is not None and (
            plan.counter_stale_p > 0 or plan.counter_wrap_bits is not None
        ):
            for pmc in machine.pmcs:
                pmc.read_interceptor = self._intercept_counter_read
        if os is not None:
            if (
                plan.signal_drop_p > 0
                or (plan.signal_delay_ns > 0 and plan.signal_delay_p > 0)
            ):
                os.signal_interceptor = self._intercept_signal
            os.fault_engine = self

    def uninstall(self) -> None:
        """Detach every installed injector (idempotent).

        Bound methods compare equal (not identical) across accesses, so
        the checks use ``==`` to only clear hooks this engine installed.
        """
        if (
            self._sim is not None
            and self._sim.schedule_interceptor == self._intercept_delay
        ):
            self._sim.schedule_interceptor = None
        if self._machine is not None:
            for pmc in self._machine.pmcs:
                if pmc.read_interceptor == self._intercept_counter_read:
                    pmc.read_interceptor = None
        if self._os is not None:
            if self._os.signal_interceptor == self._intercept_signal:
                self._os.signal_interceptor = None
            if self._os.fault_engine is self:
                self._os.fault_engine = None

    def _count(self, kind: str) -> None:
        self.injections[kind] = self.injections.get(kind, 0) + 1

    def report(self) -> dict:
        """JSON-safe account of the plan and what actually fired."""
        return {
            "plan": self.plan.to_dict(),
            "injections": dict(sorted(self.injections.items())),
        }

    # ------------------------------------------------------------------
    # Injectors
    # ------------------------------------------------------------------
    def _intercept_delay(self, delay_ns: float) -> float:
        """Timer jitter/drift on one scheduled delay (multiplicative, so
        zero-delay continuations stay immediate and ordering-exact)."""
        plan = self.plan
        factor = 1.0 + plan.timer_drift_rel
        if plan.timer_jitter_rel > 0:
            factor += plan.timer_jitter_rel * self._streams.stream(
                "faults-timer"
            ).uniform(-1.0, 1.0)
        if delay_ns > 0 and factor != 1.0:
            self._count("timer_jitter")
        return delay_ns * max(0.0, factor)

    def _intercept_signal(self, thread, signal) -> Union[None, str, float]:
        """Decide one posted signal's fate: deliver, drop, or delay.

        Returns ``None`` (deliver normally), :data:`DROP_SIGNAL`, or a
        positive re-post delay in ns (the OS schedules the retry).
        """
        rng = self._streams.stream("faults-signal")
        plan = self.plan
        if plan.signal_drop_p > 0 and rng.random() < plan.signal_drop_p:
            self._count("signal_dropped")
            return DROP_SIGNAL
        if plan.signal_delay_ns > 0 and rng.random() < plan.signal_delay_p:
            self._count("signal_delayed")
            return plan.signal_delay_ns
        return None

    def monitor_skips_wakeup(self) -> bool:
        """True when the monitor thread should skip this wake-up scan."""
        plan = self.plan
        if plan.monitor_miss_p <= 0:
            return False
        if self._streams.stream("faults-monitor").random() < plan.monitor_miss_p:
            self._count("monitor_missed")
            return True
        return False

    def _intercept_counter_read(
        self, core_id: int, event: str, value: float
    ) -> float:
        """Stale and wrapped counter observations.

        Staleness returns the previous *observed* value (still monotone,
        like reading a cached MSR image); wrap reduces modulo the
        register width, which makes the next epoch's delta negative —
        the epoch engine clamps that to zero (graceful degradation)."""
        plan = self.plan
        key = (core_id, event)
        if plan.counter_wrap_bits is not None:
            modulus = float(2 ** plan.counter_wrap_bits)
            wrapped = value % modulus
            if wrapped != value:
                self._count("counter_wrapped")
            value = wrapped
        if plan.counter_stale_p > 0:
            previous = self._stale.get(key)
            rng = self._streams.stream(f"faults-counter-{core_id}")
            if previous is not None and rng.random() < plan.counter_stale_p:
                self._count("counter_stale")
                return previous
        self._stale[key] = value
        return value

    # ------------------------------------------------------------------
    # Calibration perturbation (applied before the emulator attaches)
    # ------------------------------------------------------------------
    def perturb_calibration(
        self, calibration: "CalibrationData"
    ) -> "CalibrationData":
        """Return a perturbed copy of *calibration* (or it, unchanged)."""
        rel = self.plan.calib_perturb_rel
        if rel <= 0:
            return calibration
        rng = self._streams.stream("faults-calibration")

        def perturb(value: float) -> float:
            return value * (1.0 + rel * rng.uniform(-1.0, 1.0))

        dram_local = perturb(calibration.dram_local_ns)
        dram_remote = perturb(calibration.dram_remote_ns)
        # Calibration sanity (local < remote) survives the perturbation:
        # the emulator rejects non-physical data outright.
        if dram_remote <= dram_local:
            dram_remote = dram_local * (1.0 + 1e-3)
        self._count("calibration_perturbed")
        return dataclasses.replace(
            calibration,
            dram_local_ns=dram_local,
            dram_remote_ns=dram_remote,
            l3_ns=perturb(calibration.l3_ns),
            bandwidth_table=tuple(
                (register, perturb(rate))
                for register, rate in calibration.bandwidth_table
            ),
        )
