"""Exception hierarchy for the Quartz reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch simulator problems without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. negative delay)."""


class HardwareError(ReproError):
    """The simulated hardware was configured or driven incorrectly."""


class UnsupportedFeatureError(HardwareError):
    """The requested feature does not exist on this processor family.

    Mirrors real-world gaps the paper calls out: e.g. Sandy Bridge lacks
    separate local/remote LLC-miss events (Table 1), so the two-memory
    emulation mode of Section 3.3 cannot run there.
    """


class OsError(ReproError):
    """The simulated OS layer was driven incorrectly (e.g. double unlock)."""


class DeadlockError(OsError):
    """Every runnable entity is blocked and no events remain."""


class QuartzError(ReproError):
    """The Quartz emulator was misconfigured or misused."""


class CalibrationError(QuartzError):
    """A calibration step (latency or bandwidth) produced unusable data."""


class FaultPlanError(ReproError):
    """A fault-injection plan was malformed or inconsistent.

    Raised while *parsing or validating* a plan (e.g. the CLI ``--faults``
    spec) — never during injection, which is always well-defined once a
    plan validates.
    """


class InvariantViolation(ReproError):
    """A machine-checked runtime invariant failed during a run.

    Carries structured context so violations are actionable: which
    invariant, where in simulated time, and the epoch bookkeeping that
    broke it.  The message renders all of it; the attributes let tests
    and tooling dispatch without parsing strings.
    """

    def __init__(self, invariant: str, message: str, context: dict | None = None):
        self.invariant = invariant
        self.context = dict(context or {})
        details = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        rendered = f"invariant {invariant!r} violated: {message}"
        if details:
            rendered += f" [{details}]"
        super().__init__(rendered)


class RunInterrupted(ReproError):
    """A run grid or sweep stopped before every spec finished.

    Raised by the runner when a fan-out is cut short (Ctrl-C, a worker
    pool breaking mid-sweep, or a deterministic ``interrupt_after`` test
    crash point).  Completed work is never lost: the partial
    :class:`~repro.validation.runner.RunnerStats` (stop reason
    ``"interrupted"``) is already recorded when this propagates, and a
    checkpointed sweep has journaled every finished spec.  ``completed``
    and ``total`` let callers print progress without parsing the message.
    """

    def __init__(self, message: str, completed: int = 0, total: int = 0):
        self.completed = completed
        self.total = total
        super().__init__(message)


class WorkloadError(ReproError):
    """A benchmark workload was configured incorrectly."""


class ValidationError(ReproError):
    """A validation experiment was configured incorrectly."""
