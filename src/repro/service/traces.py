"""Seeded, streaming operation traces for the KV service.

One :class:`TraceConfig` describes the whole offered load: how many
tenants, each tenant's (disjoint) key space, the key popularity
distribution (YCSB-style zipfian or uniform), the operation mix (the
YCSB A-F presets), and optional open-loop arrival pacing.

:func:`operation_stream` generates one client's operations lazily — a
trace over millions of keys never materialises; memory use is O(1) in
the operation count.  Streams are pure functions of
``(config.seed, tenant, client)`` using arithmetic seed derivation (no
string hashing, which Python salts per process), so the same config
yields byte-identical operations in every worker of a parallel run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional

from repro.errors import WorkloadError

#: Operation kinds a trace can emit.
OP_KINDS = ("read", "update", "insert", "scan", "rmw")

#: The YCSB core workload mixes (kind -> probability), A through F.
#: D's "latest" and E's "scan" distributions are approximated with the
#: configured key distribution; the *mix* ratios are the YCSB ones.
MIXES: dict[str, tuple] = {
    "ycsb-a": (("read", 0.5), ("update", 0.5)),
    "ycsb-b": (("read", 0.95), ("update", 0.05)),
    "ycsb-c": (("read", 1.0),),
    "ycsb-d": (("read", 0.95), ("insert", 0.05)),
    "ycsb-e": (("scan", 0.95), ("insert", 0.05)),
    "ycsb-f": (("read", 0.5), ("rmw", 0.5)),
}

DISTRIBUTIONS = ("zipfian", "uniform")


class TraceOp(NamedTuple):
    """One service operation, fully determined by the trace stream.

    ``scan_len`` is 1 for point operations; ``gap_ns`` is the open-loop
    inter-arrival think time before issuing (0.0 under closed loop).
    """

    tenant: int
    kind: str
    key: int
    scan_len: int
    gap_ns: float


@dataclass(frozen=True)
class TraceConfig:
    """The offered load of one service run."""

    tenants: int = 2
    #: Operations per tenant (split across the tenant's clients).
    ops_per_tenant: int = 2_000
    #: Size of each tenant's private key space; tenant *t* owns global
    #: keys ``[t * keys_per_tenant, (t+1) * keys_per_tenant)``.
    keys_per_tenant: int = 100_000
    distribution: str = "zipfian"
    #: Zipfian skew (YCSB's theta; 0 -> uniform, 0.99 -> YCSB default).
    zipf_theta: float = 0.99
    mix: str = "ycsb-a"
    max_scan_len: int = 64
    #: Open-loop arrival rate per client (ops/s); ``None`` = closed loop.
    arrival_rate_ops_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise WorkloadError(f"need at least one tenant: {self.tenants}")
        if self.ops_per_tenant < 1:
            raise WorkloadError("ops_per_tenant must be positive")
        if self.keys_per_tenant < 1:
            raise WorkloadError("keys_per_tenant must be positive")
        if self.distribution not in DISTRIBUTIONS:
            raise WorkloadError(
                f"unknown distribution {self.distribution!r} "
                f"(choose from {', '.join(DISTRIBUTIONS)})"
            )
        if not 0.0 <= self.zipf_theta < 1.0:
            raise WorkloadError(
                f"zipf theta must be in [0, 1): {self.zipf_theta}"
            )
        if self.mix not in MIXES:
            raise WorkloadError(
                f"unknown mix {self.mix!r} "
                f"(choose from {', '.join(sorted(MIXES))})"
            )
        if self.max_scan_len < 1:
            raise WorkloadError("max_scan_len must be positive")
        if self.arrival_rate_ops_s is not None and self.arrival_rate_ops_s <= 0:
            raise WorkloadError("arrival rate must be positive")

    def to_dict(self) -> dict:
        return {
            "tenants": self.tenants,
            "ops_per_tenant": self.ops_per_tenant,
            "keys_per_tenant": self.keys_per_tenant,
            "distribution": self.distribution,
            "zipf_theta": self.zipf_theta,
            "mix": self.mix,
            "max_scan_len": self.max_scan_len,
            "arrival_rate_ops_s": self.arrival_rate_ops_s,
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# Zipfian sampling (the YCSB generator)
# ----------------------------------------------------------------------

#: (n, theta) -> zeta(n, theta); the harmonic sum is O(n) once and the
#: grids reuse a handful of (n, theta) pairs thousands of times.
_ZETA_CACHE: dict[tuple, float] = {}


def _zeta(n: int, theta: float) -> float:
    key = (n, theta)
    value = _ZETA_CACHE.get(key)
    if value is None:
        value = 0.0
        for i in range(1, n + 1):
            value += 1.0 / i**theta
        _ZETA_CACHE[key] = value
    return value


def rank_probability(rank: int, n: int, theta: float) -> float:
    """P(key of popularity rank *rank*) under zipfian(``n``, ``theta``).

    The analytic mass function behind the sampler: decreasing in rank,
    and (for rank 0) increasing in theta — the monotonicity properties
    the trace tests pin down.
    """
    if not 0 <= rank < n:
        raise WorkloadError(f"rank {rank} outside [0, {n})")
    return (1.0 / (rank + 1) ** theta) / _zeta(n, theta)


class ZipfianSampler:
    """YCSB's bounded zipfian generator over ranks ``[0, n)``.

    Rank 0 is the most popular key.  Draws exactly one ``random()`` per
    sample from the supplied stream, so interleaving with other draws
    stays deterministic.
    """

    def __init__(self, n: int, theta: float, rng: random.Random):
        if n < 1:
            raise WorkloadError(f"key space must be positive: {n}")
        self.n = n
        self.theta = theta
        self.rng = rng
        self.zetan = _zeta(n, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - _zeta(2, theta) / self.zetan
        )

    def sample(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return min(1, self.n - 1)
        rank = int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)
        return min(rank, self.n - 1)


# ----------------------------------------------------------------------
# Stream generation
# ----------------------------------------------------------------------


def _stream_seed(config: TraceConfig, tenant: int, client: int) -> int:
    # Arithmetic derivation (cf. committed_key_sequence): stable across
    # processes, unlike hashing strings or tuples-of-strings.
    return config.seed * 1_000_003 + tenant * 8_191 + client + 1


def client_ops(config: TraceConfig, clients_per_tenant: int, client: int) -> int:
    """How many of a tenant's operations client *client* issues.

    The tenant's budget splits evenly, remainder to the first clients,
    so any client count conserves total operations per tenant.
    """
    if clients_per_tenant < 1:
        raise WorkloadError(f"need at least one client: {clients_per_tenant}")
    if not 0 <= client < clients_per_tenant:
        raise WorkloadError(f"client {client} outside [0, {clients_per_tenant})")
    base, remainder = divmod(config.ops_per_tenant, clients_per_tenant)
    return base + (1 if client < remainder else 0)


def operation_stream(
    config: TraceConfig,
    tenant: int,
    client: int = 0,
    ops: Optional[int] = None,
) -> Iterator[TraceOp]:
    """Generate one client's operations, lazily.

    ``ops`` defaults to the tenant's whole per-tenant budget; the
    service passes each client its :func:`client_ops` share.  The stream
    is a pure function of ``(config, tenant, client)``.
    """
    if not 0 <= tenant < config.tenants:
        raise WorkloadError(f"tenant {tenant} outside [0, {config.tenants})")
    if ops is None:
        ops = config.ops_per_tenant
    rng = random.Random(_stream_seed(config, tenant, client))
    sampler = None
    if config.distribution == "zipfian" and config.zipf_theta > 0.0:
        sampler = ZipfianSampler(config.keys_per_tenant, config.zipf_theta, rng)
    mix = MIXES[config.mix]
    base_key = tenant * config.keys_per_tenant
    for _ in range(ops):
        choice = rng.random()
        kind = mix[-1][0]
        for candidate, probability in mix:
            if choice < probability:
                kind = candidate
                break
            choice -= probability
        if sampler is not None:
            rank = sampler.sample()
        else:
            rank = rng.randrange(config.keys_per_tenant)
        scan_len = 1
        if kind == "scan":
            scan_len = rng.randint(1, config.max_scan_len)
        gap_ns = 0.0
        if config.arrival_rate_ops_s is not None:
            gap_ns = rng.expovariate(config.arrival_rate_ops_s) * 1e9
        yield TraceOp(tenant, kind, base_key + rank, scan_len, gap_ns)


def stream_digest(config: TraceConfig, clients_per_tenant: int = 1) -> str:
    """SHA-256 over every tenant's full operation stream.

    The byte-identity witness the determinism tests pin: two configs
    produce the same digest iff they produce the same operations in the
    same order for every (tenant, client).  Streams are consumed lazily;
    nothing is materialised.
    """
    digest = hashlib.sha256()
    for tenant in range(config.tenants):
        for client in range(clients_per_tenant):
            count = client_ops(config, clients_per_tenant, client)
            for op in operation_stream(config, tenant, client, count):
                digest.update(repr(op).encode("ascii"))
    return digest.hexdigest()
