"""The DRAM cache tier in front of the PM-resident store.

A :class:`DramCache` is the service's functional cache model: it tracks
which keys are DRAM-resident (the *timing* of a probe is charged by the
service as memory traffic against a DRAM arena), which entries are dirty
under write-back, and per-tenant accounting — hits, misses, evictions,
writebacks, admissions.

Policies are pluggable per :class:`CacheConfig`:

* admission — ``always``, or ``probabilistic`` (admit with probability
  ``admit_p`` from a seeded stream, the classic anti-pollution filter);
* eviction — ``lru``, ``lfu`` (min frequency, oldest-touch tie-break),
  or ``segmented`` (SLRU: a probationary segment feeding a protected
  one, so one-hit wonders never displace the hot set).

Accounting is *conservation-checked*: ``hits + misses == lookups`` per
tenant, ``admitted == evictions + residency`` per tenant, and total
residency can never exceed capacity (enforced at every insert, not just
at the end).  :meth:`DramCache.verify_accounting` raises
:class:`~repro.errors.InvariantViolation` on any breakage, which is how
the fault-injection sweeps prove cache bookkeeping survives perturbed
runs.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import InvariantViolation, WorkloadError

ADMISSION_POLICIES = ("always", "probabilistic")
EVICTION_POLICIES = ("lru", "lfu", "segmented")


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and policy of the DRAM cache tier."""

    #: Capacity in entries (each entry caches one record).
    capacity: int = 512
    eviction: str = "lru"
    admission: str = "always"
    #: Admission probability under the probabilistic policy.
    admit_p: float = 0.7
    #: Fraction of capacity reserved for the protected SLRU segment.
    protected_fraction: float = 0.8
    #: Bytes one cached entry occupies in the DRAM arena (key + value
    #: slot); sizes the arena the service charges probes against.
    entry_bytes: int = 1088
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise WorkloadError(f"capacity must be positive: {self.capacity}")
        if self.eviction not in EVICTION_POLICIES:
            raise WorkloadError(
                f"unknown eviction policy {self.eviction!r} "
                f"(choose from {', '.join(EVICTION_POLICIES)})"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise WorkloadError(
                f"unknown admission policy {self.admission!r} "
                f"(choose from {', '.join(ADMISSION_POLICIES)})"
            )
        if not 0.0 <= self.admit_p <= 1.0:
            raise WorkloadError(f"admit_p must be in [0, 1]: {self.admit_p}")
        if not 0.0 < self.protected_fraction < 1.0:
            raise WorkloadError(
                f"protected fraction must be in (0, 1): "
                f"{self.protected_fraction}"
            )
        if self.entry_bytes < 1:
            raise WorkloadError(f"entry bytes must be positive: {self.entry_bytes}")

    @property
    def arena_bytes(self) -> int:
        """DRAM footprint of a full cache (what probe traffic spans)."""
        return max(4096, self.capacity * self.entry_bytes)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "eviction": self.eviction,
            "admission": self.admission,
            "admit_p": self.admit_p,
            "protected_fraction": self.protected_fraction,
            "entry_bytes": self.entry_bytes,
            "seed": self.seed,
        }


@dataclass
class TenantCacheStats:
    """Per-tenant cache accounting (all monotone counters)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    admitted: int = 0
    rejected: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_pct(self) -> float:
        if self.lookups == 0:
            return 0.0
        return 100.0 * self.hits / self.lookups

    def to_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "hit_pct": self.hit_pct,
        }


class _Entry:
    __slots__ = ("value", "dirty", "freq", "seq", "protected")

    def __init__(self, value: Any, dirty: bool, seq: int):
        self.value = value
        self.dirty = dirty
        self.freq = 1
        self.seq = seq
        self.protected = False


class Evicted(tuple):
    """``(tenant, key, value, dirty)`` of one evicted entry."""

    __slots__ = ()

    tenant = property(lambda self: self[0])
    key = property(lambda self: self[1])
    value = property(lambda self: self[2])
    dirty = property(lambda self: self[3])


class DramCache:
    """The functional cache: presence, dirtiness, policy, accounting."""

    def __init__(self, config: CacheConfig, tenants: int):
        if tenants < 1:
            raise WorkloadError(f"need at least one tenant: {tenants}")
        self.config = config
        self.tenants = tenants
        #: (tenant, key) -> entry, in *insertion/touch* order (an
        #: OrderedDict so LRU and SLRU victims are O(1)).
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._protected_count = 0
        self._seq = 0
        self._rng = random.Random(config.seed * 2_654_435_761 + 1)
        self.stats = {tenant: TenantCacheStats() for tenant in range(tenants)}
        self._residency = {tenant: 0 for tenant in range(tenants)}

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def residency(self, tenant: int) -> int:
        """Entries tenant *tenant* currently holds resident."""
        return self._residency[tenant]

    # -- internals ------------------------------------------------------
    def _touch(self, slot: tuple, entry: _Entry) -> None:
        self._seq += 1
        entry.seq = self._seq
        entry.freq += 1
        if self.config.eviction in ("lru", "segmented"):
            self._entries.move_to_end(slot)
        if self.config.eviction == "segmented" and not entry.protected:
            # A re-referenced probationary entry earns protection; the
            # protected segment sheds its own LRU back to probation
            # rather than growing past its share.
            entry.protected = True
            self._protected_count += 1
            protected_capacity = max(
                1, int(self.config.capacity * self.config.protected_fraction)
            )
            if self._protected_count > protected_capacity:
                for other_slot, other in self._entries.items():
                    if other.protected:
                        other.protected = False
                        self._protected_count -= 1
                        self._entries.move_to_end(other_slot)
                        break

    def _victim_slot(self) -> tuple:
        if self.config.eviction == "lru":
            return next(iter(self._entries))
        if self.config.eviction == "lfu":
            return min(
                self._entries,
                key=lambda slot: (
                    self._entries[slot].freq,
                    self._entries[slot].seq,
                ),
            )
        # segmented: oldest probationary entry; only when probation is
        # empty does the protected segment give up its own LRU.
        for slot, entry in self._entries.items():
            if not entry.protected:
                return slot
        return next(iter(self._entries))

    def _evict_one(self) -> Evicted:
        slot = self._victim_slot()
        entry = self._entries.pop(slot)
        tenant, key = slot
        if entry.protected:
            self._protected_count -= 1
        self._residency[tenant] -= 1
        stats = self.stats[tenant]
        stats.evictions += 1
        if entry.dirty:
            stats.writebacks += 1
        return Evicted((tenant, key, entry.value, entry.dirty))

    def _check_residency(self) -> None:
        if len(self._entries) > self.config.capacity:
            raise InvariantViolation(
                "cache-residency",
                "resident entries exceed capacity",
                {
                    "resident": len(self._entries),
                    "capacity": self.config.capacity,
                },
            )

    # -- the cache protocol ---------------------------------------------
    def lookup(self, tenant: int, key: int) -> tuple[bool, Any]:
        """Probe for (tenant, key): ``(hit, cached_value_or_None)``."""
        stats = self.stats[tenant]
        stats.lookups += 1
        slot = (tenant, key)
        entry = self._entries.get(slot)
        if entry is None:
            stats.misses += 1
            return (False, None)
        stats.hits += 1
        self._touch(slot, entry)
        return (True, entry.value)

    def write(self, tenant: int, key: int, value: Any) -> bool:
        """Write-back update probe: dirty the entry if resident.

        Counts as a lookup (hit or miss).  On a miss the caller writes
        the store directly (write-through for absent keys) and may then
        :meth:`insert` the clean copy.
        """
        stats = self.stats[tenant]
        stats.lookups += 1
        slot = (tenant, key)
        entry = self._entries.get(slot)
        if entry is None:
            stats.misses += 1
            return False
        stats.hits += 1
        entry.value = value
        entry.dirty = True
        self._touch(slot, entry)
        return True

    def insert(
        self, tenant: int, key: int, value: Any, dirty: bool = False
    ) -> list[Evicted]:
        """Offer (tenant, key) for admission after a miss.

        Returns the entries evicted to make room (dirty ones need a PM
        writeback, which the caller charges as memory traffic).  Under
        probabilistic admission the offer may be rejected — then nothing
        changes and the list is empty.
        """
        stats = self.stats[tenant]
        slot = (tenant, key)
        entry = self._entries.get(slot)
        if entry is not None:
            # Raced in by another client between miss and insert: fold
            # into the resident entry instead of double-admitting.
            entry.value = value
            entry.dirty = entry.dirty or dirty
            self._touch(slot, entry)
            return []
        if self.config.admission == "probabilistic":
            if self._rng.random() >= self.config.admit_p:
                stats.rejected += 1
                return []
        stats.admitted += 1
        evicted = []
        while len(self._entries) >= self.config.capacity:
            evicted.append(self._evict_one())
        self._seq += 1
        new_entry = _Entry(value, dirty, self._seq)
        self._entries[slot] = new_entry
        self._residency[tenant] += 1
        self._check_residency()
        return evicted

    def drain_dirty(self) -> list[Evicted]:
        """Flush every dirty entry (end-of-run writeback), in slot order.

        Entries stay resident but become clean; each flush counts as a
        writeback for its owning tenant.
        """
        flushed = []
        for slot, entry in self._entries.items():
            if not entry.dirty:
                continue
            entry.dirty = False
            tenant, key = slot
            self.stats[tenant].writebacks += 1
            flushed.append(Evicted((tenant, key, entry.value, True)))
        return flushed

    # -- accounting -----------------------------------------------------
    def verify_accounting(self) -> None:
        """Check every conservation law; raise on the first breakage."""
        resident: dict[int, int] = {tenant: 0 for tenant in self.stats}
        for (tenant, _key) in self._entries:
            resident[tenant] += 1
        self._check_residency()
        for tenant, stats in self.stats.items():
            context = {"tenant": tenant}
            if stats.hits + stats.misses != stats.lookups:
                raise InvariantViolation(
                    "cache-lookup-conservation",
                    "hits + misses != lookups",
                    {
                        **context,
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "lookups": stats.lookups,
                    },
                )
            if resident[tenant] != self._residency[tenant]:
                raise InvariantViolation(
                    "cache-residency-ledger",
                    "per-tenant residency ledger diverged from entries",
                    {
                        **context,
                        "ledger": self._residency[tenant],
                        "entries": resident[tenant],
                    },
                )
            if stats.admitted != stats.evictions + resident[tenant]:
                raise InvariantViolation(
                    "cache-admission-conservation",
                    "admitted != evictions + residency",
                    {
                        **context,
                        "admitted": stats.admitted,
                        "evictions": stats.evictions,
                        "residency": resident[tenant],
                    },
                )

    def report(self) -> dict:
        """JSON-safe accounting snapshot (per tenant plus totals)."""
        totals = TenantCacheStats()
        for stats in self.stats.values():
            totals.lookups += stats.lookups
            totals.hits += stats.hits
            totals.misses += stats.misses
            totals.admitted += stats.admitted
            totals.rejected += stats.rejected
            totals.evictions += stats.evictions
            totals.writebacks += stats.writebacks
        return {
            "eviction": self.config.eviction,
            "admission": self.config.admission,
            "capacity": self.config.capacity,
            "resident": len(self._entries),
            "tenants": {
                f"t{tenant}": stats.to_dict()
                for tenant, stats in sorted(self.stats.items())
            },
            "totals": totals.to_dict(),
        }
