"""The trace-driven multi-tenant KV service over SimOS.

N simulated client threads (``clients_per_tenant`` per tenant) replay
seeded :mod:`~repro.service.traces` streams against a PM-resident store
fronted by the :mod:`~repro.service.cache` DRAM tier.  The store prices
operations the same way the MassTree microbenchmark does — a dependent
node fetch per index level plus a value-heap access, all derived from
the shared :class:`~repro.workloads.kvstore.KvRecordLayout` — but keeps
a *versions* map as the authoritative value store, so cache hits are
verified for coherence, not just counted.

Caching is write-back: an update that hits only dirties the DRAM copy;
persistent-memory writes happen on misses, on dirty evictions, and in
the final drain.  Every persistent value write is followed by
``pflush`` + ``pcommit`` when ``flush_writes`` is set, which is what
makes the service sensitive to Quartz's emulated NVM write latency.

Per-operation latency lands in fixed-bucket log-spaced histograms (one
per tenant), from which :class:`ServiceResult` reports nearest-rank
p50/p95/p99/p999 and throughput per tenant and overall.  Fixed bucket
bounds make histogram merging and the derived tails exactly
reproducible — byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import Commit, Compute, JoinThread, MemBatch, PatternKind, Sleep, SpawnThread
from repro.service.cache import CacheConfig, DramCache
from repro.service.traces import TraceConfig, TraceOp, client_ops, operation_stream
from repro.stats_util import nearest_rank_index
from repro.units import CACHE_LINE_BYTES
from repro.workloads.kvstore import KvRecordLayout

#: The percentiles every tenant report carries (name -> fraction).
REPORTED_PERCENTILES = (
    ("p50_ns", 0.50),
    ("p95_ns", 0.95),
    ("p99_ns", 0.99),
    ("p999_ns", 0.999),
)


def _histogram_bounds() -> tuple:
    """Fixed log-spaced latency bucket upper bounds, in nanoseconds.

    8 buckets per decade from 16 ns to ~100 ms, integer and strictly
    increasing.  Shared by every histogram so merges are index-aligned.
    """
    bounds = []
    value = 16.0
    factor = 10.0 ** (1.0 / 8.0)
    while value <= 1.2e8:
        bound = round(value)
        if bounds and bound <= bounds[-1]:
            bound = bounds[-1] + 1
        bounds.append(bound)
        value *= factor
    return tuple(bounds)


HISTOGRAM_BOUNDS = _histogram_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with nearest-rank percentiles.

    A sample is recorded into the first bucket whose bound is >= the
    sample (the last bucket saturates).  Percentiles return the bucket
    *bound* — a deterministic, merge-stable upper estimate of the true
    nearest-rank sample.
    """

    __slots__ = ("counts", "count")

    def __init__(self, counts: Optional[list] = None):
        self.counts = counts if counts is not None else [0] * len(HISTOGRAM_BOUNDS)
        self.count = sum(self.counts)

    def record(self, latency_ns: float) -> None:
        index = bisect_left(HISTOGRAM_BOUNDS, latency_ns)
        if index >= len(HISTOGRAM_BOUNDS):
            index = len(HISTOGRAM_BOUNDS) - 1
        self.counts[index] += 1
        self.count += 1

    def merge(self, other: "LatencyHistogram") -> None:
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count

    def percentile(self, fraction: float) -> Optional[float]:
        if self.count == 0:
            return None
        rank = nearest_rank_index(self.count, fraction)
        cumulative = 0
        for bound, bucket in zip(HISTOGRAM_BOUNDS, self.counts):
            cumulative += bucket
            if rank < cumulative:
                return float(bound)
        return float(HISTOGRAM_BOUNDS[-1])

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "buckets": {
                str(bound): bucket
                for bound, bucket in zip(HISTOGRAM_BOUNDS, self.counts)
                if bucket
            },
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service run depends on."""

    trace: TraceConfig = TraceConfig()
    cache: CacheConfig = CacheConfig()
    #: Concurrent client threads per tenant.
    clients_per_tenant: int = 1
    #: Record/index shape shared with the KV-store microbenchmark.
    layout: KvRecordLayout = KvRecordLayout()
    #: Request parse/dispatch CPU cost per operation.
    compute_cycles_per_op: float = 300.0
    #: Key-comparison work per index level visit (matches the
    #: microbenchmark's default).
    compute_cycles_per_level: float = 180.0
    #: Persist every PM value write with pflush + pcommit.
    flush_writes: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients_per_tenant < 1:
            raise WorkloadError(
                f"need at least one client per tenant: {self.clients_per_tenant}"
            )
        if self.compute_cycles_per_op < 0:
            raise WorkloadError("per-op compute cannot be negative")
        if self.compute_cycles_per_level < 0:
            raise WorkloadError("per-level compute cannot be negative")

    def to_dict(self) -> dict:
        return {
            "trace": self.trace.to_dict(),
            "cache": self.cache.to_dict(),
            "clients_per_tenant": self.clients_per_tenant,
            "layout": self.layout.to_dict(),
            "compute_cycles_per_op": self.compute_cycles_per_op,
            "compute_cycles_per_level": self.compute_cycles_per_level,
            "flush_writes": self.flush_writes,
            "seed": self.seed,
        }


@dataclass
class ServiceResult:
    """Output of one service run (plain data; picklable across workers)."""

    config: dict
    duration_ns: float
    tenant_reports: dict
    overall: dict
    cache_report: dict

    def report(self) -> dict:
        """The JSON-safe summary carried by runner results and manifests."""
        return {
            "duration_ns": self.duration_ns,
            "tenants": self.tenant_reports,
            "overall": self.overall,
            "cache": self.cache_report,
        }


class _TenantLedger:
    """Per-tenant functional counters (distinct from cache accounting)."""

    __slots__ = ("ops", "kinds", "verified_reads", "scanned_records", "histogram")

    def __init__(self) -> None:
        self.ops = 0
        self.kinds: dict = {}
        self.verified_reads = 0
        self.scanned_records = 0
        self.histogram = LatencyHistogram()


class _ServiceRuntime:
    """Shared run state: cache, authoritative store, arenas, ledgers.

    One instance is shared by every client thread of the run.  The DES
    interleaves clients cooperatively, so plain Python state is safe;
    all *timing* flows through the ops the helpers yield.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        trace = config.trace
        self.cache = DramCache(config.cache, trace.tenants)
        #: tenant -> {key -> version}; an absent key is at version 0.
        self.versions: dict = {t: {} for t in range(trace.tenants)}
        self.ledgers = {t: _TenantLedger() for t in range(trace.tenants)}
        layout = config.layout
        self.level_footprints = layout.level_footprints(trace.keys_per_tenant)
        self.value_footprint = layout.value_footprint(trace.keys_per_tenant)
        self.lines_per_value = max(1, layout.value_bytes // CACHE_LINE_BYTES)
        self.arenas: dict = {}
        self.cache_arena = None

    # -- placement ------------------------------------------------------
    def allocate(self, ctx) -> None:
        layout = self.config.layout
        keys = self.config.trace.keys_per_tenant
        for tenant in range(self.config.trace.tenants):
            self.arenas[tenant] = ctx.pmalloc(
                layout.arena_bytes(keys),
                page_size=PageSize.HUGE_2M,
                label=f"svc-store{tenant}",
            )
        self.cache_arena = ctx.malloc(
            self.config.cache.arena_bytes,
            page_size=PageSize.HUGE_2M,
            label="svc-cache",
        )

    # -- authoritative values -------------------------------------------
    def current_value(self, tenant: int, key: int) -> tuple:
        return (key, self.versions[tenant].get(key, 0))

    def bump_value(self, tenant: int, key: int) -> tuple:
        version = self.versions[tenant].get(key, 0) + 1
        self.versions[tenant][key] = version
        return (key, version)

    # -- priced store paths (generators yielding ops) --------------------
    def _index_walk(self, tenant: int):
        arena = self.arenas[tenant]
        for footprint in self.level_footprints:
            yield MemBatch(
                arena,
                accesses=1,
                pattern=PatternKind.RANDOM,
                footprint_bytes=min(footprint, arena.size_bytes),
                compute_cycles_per_access=self.config.compute_cycles_per_level,
                label="svc-level",
            )

    def _cache_probe(self, store: bool = False):
        yield MemBatch(
            self.cache_arena,
            accesses=1,
            pattern=PatternKind.RANDOM,
            footprint_bytes=self.cache_arena.size_bytes,
            is_store=store,
            label="svc-cache-probe",
        )

    def _value_read(self, tenant: int):
        arena = self.arenas[tenant]
        yield MemBatch(
            arena,
            accesses=1,
            pattern=PatternKind.RANDOM,
            footprint_bytes=min(self.value_footprint, arena.size_bytes),
            label="svc-value-read",
        )

    def _value_write(self, ctx, tenant: int):
        arena = self.arenas[tenant]
        yield MemBatch(
            arena,
            accesses=1,
            pattern=PatternKind.RANDOM,
            footprint_bytes=min(self.value_footprint, arena.size_bytes),
            is_store=True,
            label="svc-value-write",
        )
        if self.config.flush_writes:
            yield from ctx.pflush(arena, lines=self.lines_per_value)
            yield Commit()

    def writeback_traffic(self, ctx, evicted):
        """Charge PM writeback traffic for evicted *dirty* entries.

        Billed to the evicting client's timeline (it performed the
        eviction), against the evicted entry's owner arena.
        """
        for entry in evicted:
            if not entry.dirty:
                continue
            yield from self._value_write(ctx, entry.tenant)

    # -- one operation ---------------------------------------------------
    def perform(self, ctx, op: TraceOp):
        config = self.config
        tenant = op.tenant
        ledger = self.ledgers[tenant]
        yield Compute(config.compute_cycles_per_op, label="svc-dispatch")
        if op.kind == "scan":
            # Range scans bypass the point cache: walk the index to the
            # start key, then stream scan_len records sequentially.
            yield from self._index_walk(tenant)
            arena = self.arenas[tenant]
            yield MemBatch(
                arena,
                accesses=op.scan_len * self.lines_per_value,
                pattern=PatternKind.SEQUENTIAL,
                footprint_bytes=min(
                    max(CACHE_LINE_BYTES, op.scan_len * config.layout.value_bytes),
                    arena.size_bytes,
                ),
                label="svc-scan",
            )
            ledger.scanned_records += op.scan_len
            return
        if op.kind in ("read", "rmw"):
            hit, cached = self.cache.lookup(tenant, op.key)
            if hit:
                yield from self._cache_probe()
                if cached == self.current_value(tenant, op.key):
                    ledger.verified_reads += 1
            else:
                yield from self._index_walk(tenant)
                yield from self._value_read(tenant)
                value = self.current_value(tenant, op.key)
                ledger.verified_reads += 1
                evicted = self.cache.insert(tenant, op.key, value, dirty=False)
                yield from self.writeback_traffic(ctx, evicted)
            if op.kind == "read":
                return
        if op.kind in ("update", "rmw"):
            value = self.bump_value(tenant, op.key)
            if self.cache.write(tenant, op.key, value):
                # Write-back: only the DRAM copy changes now.
                yield from self._cache_probe(store=True)
            else:
                # Miss: write through to PM, then admit the clean copy.
                yield from self._index_walk(tenant)
                yield from self._value_write(ctx, tenant)
                evicted = self.cache.insert(tenant, op.key, value, dirty=False)
                yield from self.writeback_traffic(ctx, evicted)
            return
        if op.kind == "insert":
            # Blind insert: write through to PM (no probe), admit clean.
            value = self.bump_value(tenant, op.key)
            yield from self._index_walk(tenant)
            yield from self._value_write(ctx, tenant)
            evicted = self.cache.insert(tenant, op.key, value, dirty=False)
            yield from self.writeback_traffic(ctx, evicted)
            return

    def drain(self, ctx):
        """End-of-run flush of every dirty cache entry to PM."""
        yield from self.writeback_traffic(ctx, self.cache.drain_dirty())

    # -- reporting -------------------------------------------------------
    def result(self, elapsed_ns: float) -> ServiceResult:
        overall_hist = LatencyHistogram()
        tenant_reports = {}
        total_ops = 0
        for tenant in sorted(self.ledgers):
            ledger = self.ledgers[tenant]
            overall_hist.merge(ledger.histogram)
            total_ops += ledger.ops
            report = {
                "ops": ledger.ops,
                "kinds": dict(sorted(ledger.kinds.items())),
                "verified_reads": ledger.verified_reads,
                "scanned_records": ledger.scanned_records,
                "throughput_ops_s": (
                    ledger.ops / elapsed_ns * 1e9 if elapsed_ns > 0 else 0.0
                ),
                "cache": self.cache.stats[tenant].to_dict(),
                "histogram": ledger.histogram.to_dict(),
            }
            for name, fraction in REPORTED_PERCENTILES:
                report[name] = ledger.histogram.percentile(fraction)
            tenant_reports[f"t{tenant}"] = report
        overall = {
            "ops": total_ops,
            "throughput_ops_s": (
                total_ops / elapsed_ns * 1e9 if elapsed_ns > 0 else 0.0
            ),
            "histogram": overall_hist.to_dict(),
        }
        for name, fraction in REPORTED_PERCENTILES:
            overall[name] = overall_hist.percentile(fraction)
        return ServiceResult(
            config=self.config.to_dict(),
            duration_ns=elapsed_ns,
            tenant_reports=tenant_reports,
            overall=overall,
            cache_report=self.cache.report(),
        )


def _client_worker(ctx, config: ServiceConfig, runtime: _ServiceRuntime,
                   tenant: int, client: int):
    """One client thread: replay its trace share, timing every op."""
    trace = config.trace
    count = client_ops(trace, config.clients_per_tenant, client)
    ledger = runtime.ledgers[tenant]
    for op in operation_stream(trace, tenant, client, count):
        if op.gap_ns > 0:
            yield Sleep(op.gap_ns)
        start = ctx.now_ns
        yield from runtime.perform(ctx, op)
        ledger.histogram.record(ctx.now_ns - start)
        ledger.ops += 1
        ledger.kinds[op.kind] = ledger.kinds.get(op.kind, 0) + 1
    return count


def kvservice_main_body(config: ServiceConfig, out: dict):
    """Main-thread body: spawn all clients, join, drain, verify, report."""

    def body(ctx):
        runtime = _ServiceRuntime(config)
        runtime.allocate(ctx)
        start = ctx.now_ns
        workers = []
        for tenant in range(config.trace.tenants):
            for client in range(config.clients_per_tenant):
                workers.append(
                    (
                        yield SpawnThread(
                            _client_worker,
                            name=f"svc{tenant}-{client}",
                            args=(config, runtime, tenant, client),
                        )
                    )
                )
        for worker in workers:
            yield JoinThread(worker)
        yield from runtime.drain(ctx)
        elapsed = ctx.now_ns - start
        # Conservation check runs on every path — including faulted runs.
        runtime.cache.verify_accounting()
        out["result"] = runtime.result(elapsed)
        return out["result"]

    return body
