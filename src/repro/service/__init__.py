"""The service layer: a trace-driven multi-tenant KV service.

Turns the emulator into a production-shaped scenario: seeded
zipfian/uniform/YCSB operation streams (:mod:`repro.service.traces`)
drive N simulated client threads against a PM-resident store fronted by
a DRAM cache tier (:mod:`repro.service.cache`), with per-operation
latency sampled into fixed-bucket histograms and reported as
p50/p95/p99/p999 plus throughput per tenant
(:mod:`repro.service.kvservice`).

Everything is seeded and deterministic: the same
:class:`~repro.service.kvservice.ServiceConfig` produces byte-identical
results for any ``--jobs`` value, and the DRAM cache's accounting is
conservation-checked (hits + misses == lookups, residency <= capacity)
at the end of every run — including faulted ones.
"""

from repro.service.cache import CacheConfig, DramCache
from repro.service.kvservice import (
    LatencyHistogram,
    ServiceConfig,
    ServiceResult,
    kvservice_main_body,
)
from repro.service.traces import (
    MIXES,
    TraceConfig,
    TraceOp,
    operation_stream,
    rank_probability,
    stream_digest,
)

__all__ = [
    "CacheConfig",
    "DramCache",
    "LatencyHistogram",
    "MIXES",
    "ServiceConfig",
    "ServiceResult",
    "TraceConfig",
    "TraceOp",
    "kvservice_main_body",
    "operation_stream",
    "rank_probability",
    "stream_digest",
]
