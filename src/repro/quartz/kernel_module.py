"""The Quartz kernel module analogue.

The paper implements Quartz as *"a pair of a simple kernel module and a
user-mode library"* (Section 3.1).  The kernel module:

* programs the ``THRT_PWR_DIMM_[0:2]`` thermal-control registers (PCI
  config space, privileged) to throttle DRAM bandwidth per channel;
* programs the performance events of Table 1 into each core's PMCs;
* enables direct user-mode counter access via ``rdpmc`` so the library
  avoids trapping on every read.

This class is the only code in the reproduction allowed to pass
``privileged=True`` to the hardware — the same trust boundary as ring 0.
"""

from __future__ import annotations

from repro.errors import QuartzError
from repro.hw.machine import Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX


class QuartzKernelModule:
    """Privileged services for the user-mode library."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._loaded = False
        self._user_rdpmc_enabled = False
        self._saved_throttle: dict[int, int] = {}

    def load(self) -> None:
        """insmod: snapshot hardware state for clean unload."""
        if self._loaded:
            raise QuartzError("kernel module already loaded")
        self._saved_throttle = {
            node: controller.throttle_register
            for node, controller in enumerate(self.machine.controllers)
        }
        self._loaded = True

    def unload(self) -> None:
        """rmmod: restore throttle registers to their pre-load values."""
        self._require_loaded()
        for node, value in self._saved_throttle.items():
            self.machine.controller(node).program_throttle_register(
                value, privileged=True
            )
        self._loaded = False
        self._user_rdpmc_enabled = False

    @property
    def loaded(self) -> bool:
        """True while the module is inserted."""
        return self._loaded

    # ------------------------------------------------------------------
    # Performance counters
    # ------------------------------------------------------------------
    def setup_counters(self) -> None:
        """Program the Table 1 events on every core and enable rdpmc."""
        self._require_loaded()
        events = self.machine.arch.counter_events.all_events()
        for pmc in self.machine.pmcs:
            pmc.program(events, privileged=True)
        self._user_rdpmc_enabled = True

    @property
    def user_rdpmc_enabled(self) -> bool:
        """True once CR4.PCE has been set for user-mode rdpmc."""
        return self._user_rdpmc_enabled

    # ------------------------------------------------------------------
    # Bandwidth throttling
    # ------------------------------------------------------------------
    def set_throttle_register(self, node: int, value: int) -> None:
        """Program a node's thermal-control register (all channels)."""
        self._require_loaded()
        if not 0 <= value <= THROTTLE_REGISTER_MAX:
            raise QuartzError(
                f"throttle value {value} outside 12-bit register range"
            )
        self.machine.controller(node).program_throttle_register(
            value, privileged=True
        )

    def set_rw_throttle_registers(
        self, node: int, read_value: int, write_value: int
    ) -> None:
        """Program a node's separate read/write throttle registers.

        Only works on parts with the registers wired up (the paper's
        footnote-2 extension); raises UnsupportedFeatureError otherwise.
        """
        self._require_loaded()
        self.machine.controller(node).program_rw_throttle_registers(
            read_value, write_value, privileged=True
        )

    def reset_throttle(self, node: int) -> None:
        """Restore a node's register to full bandwidth."""
        self._require_loaded()
        self.machine.controller(node).program_throttle_register(
            THROTTLE_REGISTER_MAX, privileged=True
        )

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise QuartzError("kernel module not loaded")
