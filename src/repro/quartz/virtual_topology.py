"""The Virtual Topology of the two-memory mode (Section 3.3, Figure 7).

The emulator partitions sockets into *sibling sets* of two.  Application
threads run on the first socket of each set and use its local DRAM via
plain ``malloc``; the sibling socket's DRAM becomes *virtual NVM*, reached
through ``pmalloc`` (implemented with ``numa_alloc_onnode``).  The sibling
socket's cores do no computation — the price paid for being able to split
LLC misses into local vs. remote via hardware counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QuartzError
from repro.hw.machine import Machine
from repro.hw.topology import MemoryRegion, PageSize

if TYPE_CHECKING:
    from repro.os.thread import SimThread


class VirtualTopology:
    """Sibling-set socket partitioning with a virtual-NVM allocator."""

    def __init__(self, machine: Machine):
        sockets = machine.arch.sockets
        if sockets < 2 or sockets % 2 != 0:
            raise QuartzError(
                f"two-memory emulation needs an even number of sockets "
                f"(>= 2), got {sockets}"
            )
        machine.arch.require_local_remote_counters()
        self.machine = machine
        #: (compute socket, virtual-NVM socket) pairs.
        self.sibling_sets = tuple(
            (socket, socket + 1) for socket in range(0, sockets, 2)
        )
        self.pmalloc_count = 0

    @property
    def compute_sockets(self) -> tuple[int, ...]:
        """Sockets application threads may run on."""
        return tuple(pair[0] for pair in self.sibling_sets)

    def nvm_node_for(self, socket: int) -> int:
        """The virtual-NVM node of *socket*'s sibling set."""
        for compute, nvm in self.sibling_sets:
            if socket == compute:
                return nvm
        raise QuartzError(
            f"socket {socket} is a virtual-NVM socket; application threads "
            f"must run on one of {self.compute_sockets}"
        )

    # -- pmalloc/pfree sync hooks -------------------------------------------
    def pmalloc_hook(
        self,
        thread: "SimThread",
        size_bytes: int,
        page_size: PageSize,
        label: str,
    ) -> MemoryRegion:
        """Allocate virtual NVM on the caller's sibling socket."""
        node = self.nvm_node_for(thread.core.socket)
        self.pmalloc_count += 1
        return self.machine.allocate(
            size_bytes,
            node=node,
            page_size=page_size,
            label=label or "virtual-nvm",
            persistent=True,
        )

    def pfree_hook(self, thread: "SimThread", region: MemoryRegion) -> None:
        """Release a virtual-NVM region."""
        if not region.persistent:
            raise QuartzError("pfree of a non-persistent region")
        self.machine.free(region)
