"""The Virtual Topology of the two-memory mode (Section 3.3, Figure 7).

The emulator partitions sockets into *sibling sets* of two.  Application
threads run on the first socket of each set and use its local DRAM via
plain ``malloc``; the sibling socket's DRAM becomes *virtual NVM*, reached
through ``pmalloc`` (implemented with ``numa_alloc_onnode``).  The sibling
socket's cores do no computation — the price paid for being able to split
LLC misses into local vs. remote via hardware counters.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from repro.errors import QuartzError
from repro.hw.machine import Machine
from repro.hw.topology import MemoryRegion, PageSize
from repro.quartz.tiers import (
    MemoryTier,
    PlacementPolicy,
    TierDirectory,
    validate_tier_list,
)

if TYPE_CHECKING:
    from repro.os.thread import SimThread


class VirtualTopology:
    """Sibling-set socket partitioning with a virtual-NVM allocator."""

    def __init__(self, machine: Machine):
        sockets = machine.arch.sockets
        if sockets < 2 or sockets % 2 != 0:
            raise QuartzError(
                f"two-memory emulation needs an even number of sockets "
                f"(>= 2), got {sockets}"
            )
        machine.arch.require_local_remote_counters()
        self.machine = machine
        #: (compute socket, virtual-NVM socket) pairs.
        self.sibling_sets = tuple(
            (socket, socket + 1) for socket in range(0, sockets, 2)
        )
        self.pmalloc_count = 0

    @property
    def compute_sockets(self) -> tuple[int, ...]:
        """Sockets application threads may run on."""
        return tuple(pair[0] for pair in self.sibling_sets)

    def nvm_node_for(self, socket: int) -> int:
        """The virtual-NVM node of *socket*'s sibling set."""
        for compute, nvm in self.sibling_sets:
            if socket == compute:
                return nvm
        raise QuartzError(
            f"socket {socket} is a virtual-NVM socket; application threads "
            f"must run on one of {self.compute_sockets}"
        )

    # -- pmalloc/pfree sync hooks -------------------------------------------
    def pmalloc_hook(
        self,
        thread: "SimThread",
        size_bytes: int,
        page_size: PageSize,
        label: str,
    ) -> MemoryRegion:
        """Allocate virtual NVM on the caller's sibling socket."""
        node = self.nvm_node_for(thread.core.socket)
        self.pmalloc_count += 1
        return self.machine.allocate(
            size_bytes,
            node=node,
            page_size=page_size,
            label=label or "virtual-nvm",
            persistent=True,
        )

    def pfree_hook(self, thread: "SimThread", region: MemoryRegion) -> None:
        """Release a virtual-NVM region."""
        if not region.persistent:
            raise QuartzError("pfree of a non-persistent region")
        self.machine.free(region)


class TieredTopology(VirtualTopology):
    """The N-tier generalization of the virtual topology.

    Physically identical to the two-memory layout — every emulated tier
    lives on the sibling socket's DRAM, because that is the only memory
    whose LLC misses the local/remote counters can separate.  What
    differs is the *logical* mapping: a placement policy assigns each
    pmalloc'd region to one of the emulated tiers, the
    :class:`~repro.quartz.tiers.TierDirectory` remembers the assignment,
    and the epoch engine charges each tier's share of the measured
    remote stalls at that tier's own read/write latencies.
    """

    def __init__(
        self,
        machine: Machine,
        tiers: Sequence[MemoryTier],
        policy: PlacementPolicy,
    ):
        super().__init__(machine)
        validate_tier_list(tiers)
        self.tiers = tuple(tiers)
        self.policy = policy
        self.directory = TierDirectory(tiers=self.tiers)

    def pmalloc_hook(
        self,
        thread: "SimThread",
        size_bytes: int,
        page_size: PageSize,
        label: str,
    ) -> MemoryRegion:
        """Allocate on the sibling socket and file under a tier."""
        tier_index = self.policy.place(size_bytes, self.directory)
        region = super().pmalloc_hook(
            thread,
            size_bytes,
            page_size,
            label or f"tier-{self.tiers[tier_index].name}",
        )
        self.directory.register(region, tier_index)
        return region

    def pfree_hook(self, thread: "SimThread", region: MemoryRegion) -> None:
        """Release a tiered region and drop its directory entry."""
        self.directory.unregister(region)
        super().pfree_hook(thread, region)
