"""Quartz — the paper's contribution, reimplemented against the simulator.

The package mirrors the structure of Section 3:

* :mod:`repro.quartz.kernel_module` — the privileged half: programs the
  thermal-control registers and performance counters, enables user-mode
  ``rdpmc``;
* :mod:`repro.quartz.emulator` — the user-mode library: attaches to a
  process, forks the monitor thread, interposes on pthread calls, closes
  epochs and injects delays;
* :mod:`repro.quartz.model` — the analytic memory model, Eqs. (1)-(4);
* :mod:`repro.quartz.epoch` — per-thread epoch state, overhead
  amortisation (Section 3.2);
* :mod:`repro.quartz.counters` — rdpmc vs. PAPI-style counter access;
* :mod:`repro.quartz.bandwidth` / :mod:`repro.quartz.calibration` —
  bandwidth throttling and the offline calibration tables;
* :mod:`repro.quartz.pm` — pmalloc/pflush and the pcommit write model
  (Section 6);
* :mod:`repro.quartz.virtual_topology` — two-memory (DRAM + NVM)
  emulation (Section 3.3).
"""

from repro.quartz.calibration import CalibrationData, calibrate_arch
from repro.quartz.config import EmulationMode, QuartzConfig, WriteModel
from repro.quartz.emulator import Quartz
from repro.quartz.presets import (
    ALL_TECHNOLOGIES,
    MEMRISTOR,
    PCM,
    SLOW_NVM,
    STT_MRAM,
    NvmTechnology,
    technology_by_name,
)
from repro.quartz.report import render_report
from repro.quartz.stats import EpochTrigger, QuartzStats
from repro.quartz.trace import EpochTrace, attach_trace

__all__ = [
    "ALL_TECHNOLOGIES",
    "CalibrationData",
    "EmulationMode",
    "EpochTrace",
    "EpochTrigger",
    "MEMRISTOR",
    "NvmTechnology",
    "PCM",
    "Quartz",
    "QuartzConfig",
    "QuartzStats",
    "SLOW_NVM",
    "STT_MRAM",
    "WriteModel",
    "attach_trace",
    "calibrate_arch",
    "render_report",
    "technology_by_name",
]
