"""The analytic memory model — Equations (1) through (4) of the paper.

Pure functions over counter values; no simulator state.  The epoch engine
feeds these with performance-counter deltas and calibrated latencies.

Notation (Sections 2.2, 3.3):

* ``M_i`` — memory references reaching DRAM in epoch *i*;
* ``LDM_STALL_i`` — processor stall cycles serving loads in epoch *i*;
* ``W`` — ratio of DRAM latency to L3 latency;
* ``NVM_lat`` / ``DRAM_lat`` — average access latencies.
"""

from __future__ import annotations

from repro.errors import QuartzError


def eq1_simple_delay(
    memory_references: float, nvm_latency_ns: float, dram_latency_ns: float
) -> float:
    """Eq. (1): the naive delay — every reference serialized.

    Over-estimates by the MLP factor when accesses overlap (Figure 2),
    which is why Quartz uses :func:`eq2_delay_from_stalls` instead; kept
    for the model-comparison ablation.
    """
    _require_latencies(nvm_latency_ns, dram_latency_ns)
    if memory_references < 0:
        raise QuartzError(f"negative reference count: {memory_references}")
    return memory_references * (nvm_latency_ns - dram_latency_ns)


def eq2_delay_from_stalls(
    ldm_stall_ns: float, nvm_latency_ns: float, dram_latency_ns: float
) -> float:
    """Eq. (2): delay from memory stall time.

    ``LDM_STALL / DRAM_lat`` recovers the number of *serialized* memory
    trips (MLP-adjusted), each of which must be stretched by
    ``NVM_lat - DRAM_lat``.  Stall time is passed in ns (the caller
    converts from cycles using the nominal frequency — the step DVFS
    breaks, Section 6).
    """
    _require_latencies(nvm_latency_ns, dram_latency_ns)
    if ldm_stall_ns < 0:
        raise QuartzError(f"negative stall time: {ldm_stall_ns}")
    return ldm_stall_ns / dram_latency_ns * (nvm_latency_ns - dram_latency_ns)


def eq3_ldm_stall(
    l2_pending_stall_cycles: float,
    l3_hits: float,
    l3_misses: float,
    w_dram_to_l3: float,
) -> float:
    """Eq. (3): split L2-pending stalls into the memory-served part.

    ``STALLS_L2_PENDING`` counts stalls for both LLC hits and DRAM
    accesses; weighting misses by ``W`` (DRAM/L3 latency ratio)
    apportions the stall cycles to the DRAM-bound loads, per the Intel
    optimisation manual formulation the paper cites.
    """
    if l2_pending_stall_cycles < 0:
        raise QuartzError(f"negative stall cycles: {l2_pending_stall_cycles}")
    if l3_hits < 0 or l3_misses < 0:
        raise QuartzError("negative counter values")
    if w_dram_to_l3 <= 0:
        raise QuartzError(f"W ratio must be positive: {w_dram_to_l3}")
    weighted_misses = w_dram_to_l3 * l3_misses
    denominator = l3_hits + weighted_misses
    if denominator <= 0:
        return 0.0
    return l2_pending_stall_cycles * weighted_misses / denominator


def eq4_remote_stall_split(
    total_stall_ns: float,
    local_references: float,
    remote_references: float,
    local_latency_ns: float,
    remote_latency_ns: float,
) -> float:
    """Eq. (4) (Section 3.3): stall time attributable to remote DRAM.

    Latency-weighted split: with 10 local x 100 ns and 10 remote x 200 ns
    references, 3000 ns of stall splits 1000/2000 — the worked example in
    the paper.
    """
    if total_stall_ns < 0:
        raise QuartzError(f"negative stall time: {total_stall_ns}")
    if local_references < 0 or remote_references < 0:
        raise QuartzError("negative reference counts")
    if local_latency_ns <= 0 or remote_latency_ns <= 0:
        raise QuartzError("latencies must be positive")
    # Normalise by the larger reference count before weighting: raw
    # products underflow into subnormals when the counts are at the
    # bottom of the float range, and the lost bits break the local/remote
    # partition (local + remote would exceed the total).  Computing the
    # ratio first keeps the result within [0, total].
    scale = max(local_references, remote_references)
    if scale <= 0:
        return 0.0
    remote_weight = (remote_references / scale) * remote_latency_ns
    denominator = (local_references / scale) * local_latency_ns + remote_weight
    if denominator <= 0:
        return 0.0
    return total_stall_ns * (remote_weight / denominator)


def _require_latencies(nvm_latency_ns: float, dram_latency_ns: float) -> None:
    if dram_latency_ns <= 0:
        raise QuartzError(f"DRAM latency must be positive: {dram_latency_ns}")
    if nvm_latency_ns < dram_latency_ns:
        raise QuartzError(
            f"cannot emulate NVM faster than the backing DRAM "
            f"({nvm_latency_ns} < {dram_latency_ns})"
        )
