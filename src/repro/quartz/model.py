"""The analytic memory model — Equations (1) through (4) of the paper.

Pure functions over counter values; no simulator state.  The epoch engine
feeds these with performance-counter deltas and calibrated latencies.

Notation (Sections 2.2, 3.3):

* ``M_i`` — memory references reaching DRAM in epoch *i*;
* ``LDM_STALL_i`` — processor stall cycles serving loads in epoch *i*;
* ``W`` — ratio of DRAM latency to L3 latency;
* ``NVM_lat`` / ``DRAM_lat`` — average access latencies.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QuartzError


def eq1_simple_delay(
    memory_references: float, nvm_latency_ns: float, dram_latency_ns: float
) -> float:
    """Eq. (1): the naive delay — every reference serialized.

    Over-estimates by the MLP factor when accesses overlap (Figure 2),
    which is why Quartz uses :func:`eq2_delay_from_stalls` instead; kept
    for the model-comparison ablation.
    """
    _require_latencies(nvm_latency_ns, dram_latency_ns, equation="Eq. (1)")
    if memory_references < 0:
        raise QuartzError(f"negative reference count: {memory_references}")
    return memory_references * (nvm_latency_ns - dram_latency_ns)


def eq2_delay_from_stalls(
    ldm_stall_ns: float, nvm_latency_ns: float, dram_latency_ns: float
) -> float:
    """Eq. (2): delay from memory stall time.

    ``LDM_STALL / DRAM_lat`` recovers the number of *serialized* memory
    trips (MLP-adjusted), each of which must be stretched by
    ``NVM_lat - DRAM_lat``.  Stall time is passed in ns (the caller
    converts from cycles using the nominal frequency — the step DVFS
    breaks, Section 6).
    """
    _require_latencies(nvm_latency_ns, dram_latency_ns, equation="Eq. (2)")
    if ldm_stall_ns < 0:
        raise QuartzError(f"negative stall time: {ldm_stall_ns}")
    return ldm_stall_ns / dram_latency_ns * (nvm_latency_ns - dram_latency_ns)


def eq3_ldm_stall(
    l2_pending_stall_cycles: float,
    l3_hits: float,
    l3_misses: float,
    w_dram_to_l3: float,
) -> float:
    """Eq. (3): split L2-pending stalls into the memory-served part.

    ``STALLS_L2_PENDING`` counts stalls for both LLC hits and DRAM
    accesses; weighting misses by ``W`` (DRAM/L3 latency ratio)
    apportions the stall cycles to the DRAM-bound loads, per the Intel
    optimisation manual formulation the paper cites.
    """
    if l2_pending_stall_cycles < 0:
        raise QuartzError(f"negative stall cycles: {l2_pending_stall_cycles}")
    if l3_hits < 0 or l3_misses < 0:
        raise QuartzError("negative counter values")
    if w_dram_to_l3 <= 0:
        raise QuartzError(f"W ratio must be positive: {w_dram_to_l3}")
    weighted_misses = w_dram_to_l3 * l3_misses
    denominator = l3_hits + weighted_misses
    if denominator <= 0:
        if l2_pending_stall_cycles > 0:
            # A positive stall count with zero LLC references means the
            # PMC feed is inconsistent (miscalibrated or wrapped); the
            # old behaviour of returning 0 silently discarded the stall
            # time and underreported delay.
            raise QuartzError(
                f"Eq. (3): {l2_pending_stall_cycles} L2-pending stall "
                f"cycles but zero weighted LLC references "
                f"(hits={l3_hits}, misses={l3_misses}); inconsistent "
                "counter feed"
            )
        return 0.0
    # Ratio first: the quotient of weighted misses over the denominator
    # is exact at 1.0 when hits are zero, and always <= 1 — multiplying
    # stalls by a subnormal numerator first can round *up* in the
    # subnormal grid and report more memory stall than was measured.
    return l2_pending_stall_cycles * (weighted_misses / denominator)


def eq4_remote_stall_split(
    total_stall_ns: float,
    local_references: float,
    remote_references: float,
    local_latency_ns: float,
    remote_latency_ns: float,
) -> float:
    """Eq. (4) (Section 3.3): stall time attributable to remote DRAM.

    Latency-weighted split: with 10 local x 100 ns and 10 remote x 200 ns
    references, 3000 ns of stall splits 1000/2000 — the worked example in
    the paper.
    """
    if total_stall_ns < 0:
        raise QuartzError(f"negative stall time: {total_stall_ns}")
    if local_references < 0 or remote_references < 0:
        raise QuartzError("negative reference counts")
    if local_latency_ns <= 0 or remote_latency_ns <= 0:
        raise QuartzError("latencies must be positive")
    # Normalise by the larger reference count before weighting: raw
    # products underflow into subnormals when the counts are at the
    # bottom of the float range, and the lost bits break the local/remote
    # partition (local + remote would exceed the total).  Computing the
    # ratio first keeps the result within [0, total].
    scale = max(local_references, remote_references)
    if scale <= 0:
        return 0.0
    remote_weight = (remote_references / scale) * remote_latency_ns
    denominator = (local_references / scale) * local_latency_ns + remote_weight
    if denominator <= 0:
        return 0.0
    return total_stall_ns * (remote_weight / denominator)


def eqN_tier_stall_split(
    total_stall_ns: float,
    tier_references: "Sequence[float]",
    tier_latencies_ns: "Sequence[float]",
) -> tuple[float, ...]:
    """N-tier generalization of Eq. (4): stall share per memory tier.

    Splits *total_stall_ns* across an ordered list of tiers in proportion
    to ``references_i x latency_i`` — exactly Eq. (4)'s latency-weighted
    partition, extended from {local, remote} to any tier count.  The
    arithmetic replicates :func:`eq4_remote_stall_split` operation for
    operation (same normalisation by the largest reference count, same
    summation order), so for two tiers the second share is bit-identical
    to ``eq4_remote_stall_split(total, refs[0], refs[1], lat[0], lat[1])``
    — the property the golden-digest regression pins.
    """
    if total_stall_ns < 0:
        raise QuartzError(f"negative stall time: {total_stall_ns}")
    if len(tier_references) != len(tier_latencies_ns):
        raise QuartzError(
            f"tier reference/latency length mismatch: "
            f"{len(tier_references)} != {len(tier_latencies_ns)}"
        )
    if not tier_references:
        raise QuartzError("stall split needs at least one tier")
    for references in tier_references:
        if references < 0:
            raise QuartzError("negative reference counts")
    for latency in tier_latencies_ns:
        if latency <= 0:
            raise QuartzError("latencies must be positive")
    # Same subnormal guard as Eq. (4): normalise by the largest reference
    # count before weighting so tiny counts keep their ratio instead of
    # underflowing, and the shares stay within [0, total].
    scale = max(tier_references)
    if scale <= 0:
        return tuple(0.0 for _ in tier_references)
    weights = [
        (references / scale) * latency
        for references, latency in zip(tier_references, tier_latencies_ns)
    ]
    denominator = 0.0
    for weight in weights:
        denominator += weight
    if denominator <= 0:
        return tuple(0.0 for _ in tier_references)
    return tuple(total_stall_ns * (weight / denominator) for weight in weights)


def tier_direction_delay(
    stall_ns: float,
    read_references: float,
    write_references: float,
    read_latency_ns: float,
    write_latency_ns: float,
    backing_latency_ns: float,
) -> tuple[float, float]:
    """Per-direction delay for one tier's stall share.

    Splits a tier's stall time between loads and stores in proportion to
    the observed reference counts (Koshiba et al.'s asymmetric-latency
    model), then stretches each direction by its own target latency via
    Eq. (2).  With no observed references everything is treated as reads
    — the PMC stall counters only see load stalls, so that is the
    conservative attribution.  Returns ``(read_delay_ns, write_delay_ns)``.
    """
    if stall_ns < 0:
        raise QuartzError(f"negative stall time: {stall_ns}")
    if read_references < 0 or write_references < 0:
        raise QuartzError("negative reference counts")
    total = read_references + write_references
    if total <= 0:
        return (
            eq2_delay_from_stalls(stall_ns, read_latency_ns, backing_latency_ns),
            0.0,
        )
    # Ratio first, mirroring the split-delay guard in the epoch engine:
    # the remainder must never round below zero.
    read_share = stall_ns * (read_references / total)
    write_share = max(0.0, stall_ns - read_share)
    return (
        eq2_delay_from_stalls(read_share, read_latency_ns, backing_latency_ns),
        eq2_delay_from_stalls(write_share, write_latency_ns, backing_latency_ns),
    )


def _require_latencies(
    nvm_latency_ns: float, dram_latency_ns: float, equation: str = "the model"
) -> None:
    if dram_latency_ns <= 0:
        raise QuartzError(f"DRAM latency must be positive: {dram_latency_ns}")
    # The equal case is explicitly allowed: zero-delay emulation is valid
    # (it is the natural 1-tier degenerate configuration); only a target
    # strictly below the backing latency is unemulable.
    if nvm_latency_ns < dram_latency_ns:
        raise QuartzError(
            f"{equation}: target NVM latency {nvm_latency_ns} ns is below "
            f"the backing DRAM latency {dram_latency_ns} ns; DRAM can only "
            "be slowed down (equal latencies are allowed and yield zero "
            "delay)"
        )
