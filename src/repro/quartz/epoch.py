"""Per-thread epoch state and the close/reopen machinery (Sections 2.2-3.2).

An *epoch* is the interval between two delay injections.  Closing one:

1. reads the Table 1 counters through the configured backend (cost in
   cycles depends on rdpmc vs. PAPI, Section 3.2);
2. derives the memory-bound stall time via Eq. (3) — split local/remote
   with Eq. (4) in two-memory mode;
3. converts stalls to the required delay via Eq. (2);
4. amortises accumulated epoch-processing overhead by shaving it off the
   delay (carrying any excess to future epochs, Section 3.2);
5. spins for the remaining delay (unless injection is switched off) and
   starts the next epoch.

**Critical-section attribution.**  Section 2.3 requires delay accumulated
*inside* a critical section to be injected before the lock is released
(Figure 4b) so it propagates to waiters — while delay accumulated
*outside* must not be, or work that physically overlaps other threads'
critical sections would be serialised under the lock, inflating completion
time (~50% on the with-compute Multi-Threaded case).  The engine therefore
keeps cheap ``rdtscp`` timestamps at the interposed ``pthread_mutex_lock``
and ``pthread_mutex_unlock`` boundaries, accumulating in-CS and out-of-CS
wall time per epoch (blocked time excluded — it accrues no stalls), and
every sync-triggered close splits its delay proportionally: the CS share
spins while the lock is held, the outside share while it is not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, TYPE_CHECKING

from repro.errors import QuartzError
from repro.hw.machine import Machine
from repro.ops import Compute, Spin
from repro.quartz.calibration import CalibrationData
from repro.quartz.config import EPOCH_BASE_COST_CYCLES, EmulationMode, QuartzConfig
from repro.quartz.counters import CounterBackend
from repro.quartz.model import (
    eq1_simple_delay,
    eq2_delay_from_stalls,
    eq3_ldm_stall,
    eq4_remote_stall_split,
    eqN_tier_stall_split,
    tier_direction_delay,
)
from repro.quartz.stats import EpochTrigger, QuartzStats, ThreadQuartzStats

if TYPE_CHECKING:
    from repro.os.thread import SimThread
    from repro.quartz.tiers import TierAccountant
    from repro.quartz.virtual_topology import TieredTopology

#: Cycles for the timestamp bookkeeping at a sync boundary (two rdtscp
#: plus arithmetic) — far cheaper than a full epoch close, which is what
#: lets the minimum epoch size keep its purpose.
BOUNDARY_COST_CYCLES = 60.0


def amortize_delay(
    pool_ns: float, overhead_ns: float, delay_ns: float
) -> tuple[float, float, float]:
    """Section 3.2 amortisation as a pure function.

    The epoch's processing overhead joins the carried pool; the pool then
    absorbs as much of the computed delay as it can.  Returns
    ``(injected_ns, amortized_ns, new_pool_ns)`` satisfying, for
    non-negative inputs::

        injected + amortized == delay        (conservation)
        0 <= injected <= delay               (never schedules into the past)
        new_pool >= 0                        (carry is never negative)

    Branching on which side is exhausted keeps the carry exactly
    non-negative: the naive ``pool - (delay - injected)`` form loses one
    ulp when ``delay - pool`` rounds, leaving a pool of ``-1e-17``.
    """
    pool = pool_ns + overhead_ns
    if delay_ns > pool:
        # Pool fully consumed: everything beyond it is injected.
        return delay_ns - pool, pool, 0.0
    # Delay fully absorbed: the remainder stays carried (>= 0 exactly,
    # because subtracting a smaller float from a larger one never rounds
    # below zero).
    return 0.0, delay_ns, pool - delay_ns


@dataclass(frozen=True)
class EpochCloseInfo:
    """One epoch close, as seen by observers (e.g. the InvariantMonitor).

    Carries the full accounting picture — computed delay, amortisation
    split, overhead pool before/after, and (for sync closes) the CS /
    out-of-CS shares — so invariants can be checked without re-deriving
    any of it.
    """

    time_ns: float
    tid: int
    thread_name: str
    trigger: EpochTrigger
    epoch_length_ns: float
    delay_computed_ns: float
    injected_ns: float
    amortized_ns: float
    overhead_added_ns: float
    pool_before_ns: float
    pool_after_ns: float
    cs_wall_ns: float
    out_wall_ns: float
    #: The delay actually handed to the CS/out split (None for monitor and
    #: exit closes, which inject everything in place).
    split_delay_ns: Optional[float] = None
    cs_share_ns: Optional[float] = None
    out_share_ns: Optional[float] = None
    #: 1-based position of this close in the engine's notification order.
    #: Two closes can share a float timestamp; the sequence number gives
    #: observers (trace, crash injector) a total, deterministic identity.
    close_seq: int = 0
    #: Per-tier delay decomposition of a multi-tier close (index 0 is the
    #: DRAM tier, always 0.0); None outside multi-tier mode.  The
    #: invariant monitor checks these sum to ``delay_computed_ns``.
    tier_delays_ns: Optional[tuple[float, ...]] = None


@dataclass
class ThreadEpochState:
    """The Quartz library's per-thread bookkeeping."""

    start_ns: float
    #: Counter values at epoch start, aligned with the engine's cached
    #: event-name tuple (``EpochEngine._event_names``).
    counter_base: list[float]
    overhead_pool_ns: float = 0.0
    #: Running wall time spent inside / outside critical sections during
    #: the current epoch (blocked time excluded).
    cs_wall_ns: float = 0.0
    out_wall_ns: float = 0.0
    #: Timestamp of the last attribution boundary.
    last_boundary_ns: float = 0.0
    #: Critical-section nesting depth.
    cs_depth: int = 0
    #: Per-tier (reads, writes) accountant snapshot at epoch start —
    #: the software analogue of ``counter_base`` (multi-tier mode only).
    tier_base: Optional[list] = None


@dataclass
class SyncClosePlan:
    """Everything a sync-point hook must execute for one epoch close."""

    cost_cycles: float
    #: Spin before the interposed call (pre-release at unlock, outside the
    #: lock at acquire).
    pre_spin_ns: float
    #: Spin after the interposed call (outside the lock at unlock, inside
    #: at acquire).
    post_spin_ns: float


class EpochEngine:
    """Implements epoch close/reopen against one machine."""

    def __init__(
        self,
        machine: Machine,
        config: QuartzConfig,
        calibration: CalibrationData,
        backend: CounterBackend,
        stats: QuartzStats,
        tiered: Optional["TieredTopology"] = None,
        accountant: Optional["TierAccountant"] = None,
    ):
        self.machine = machine
        self.config = config
        self.calibration = calibration
        self.backend = backend
        self.stats = stats
        self.tiered = tiered
        self.accountant = accountant
        self._events = machine.arch.counter_events
        self._freq_ghz = machine.arch.freq_ghz  # nominal (DVFS assumed off)
        # Hot-path cache: the event-name tuple, each model event's index
        # into it, and the close costs (all constant per engine), so a
        # close computes deltas by list index instead of rebuilding dicts.
        names = self._events.all_events()
        self._event_names = names
        self._i_stalls = names.index(self._events.l2_stalls)
        self._i_hits = names.index(self._events.l3_hit)
        self._i_combined = (
            names.index(self._events.l3_miss_combined)
            if self._events.l3_miss_combined is not None
            else None
        )
        self._i_local = (
            names.index(self._events.l3_miss_local)
            if self._events.l3_miss_local is not None
            else None
        )
        self._i_remote = (
            names.index(self._events.l3_miss_remote)
            if self._events.l3_miss_remote is not None
            else None
        )
        read_cost = (
            backend.fixed_cost_cycles
            + backend.cost_per_event_cycles * len(names)
        )
        self._close_cost_cycles = read_cost + EPOCH_BASE_COST_CYCLES
        self._overhead_per_close_ns = (
            EPOCH_BASE_COST_CYCLES + read_cost
        ) / self._freq_ghz
        #: Callables invoked with an :class:`EpochCloseInfo` after every
        #: close's accounting (before the delay spins execute).  The
        #: fault layer's InvariantMonitor attaches here; observers may
        #: raise to abort the run.
        self.close_observers: list = []
        #: Total closes notified so far (stamps ``close_seq``).
        self.closes_notified = 0
        #: Per-tier decomposition of the most recent close's delay
        #: (multi-tier mode only) — stashed here so the close paths can
        #: hand it to observers without widening ``_close_measure``'s
        #: return (which the epoch trace wraps).
        self._last_tier_delays: Optional[tuple[float, ...]] = None
        if config.mode in (EmulationMode.TWO_MEMORY, EmulationMode.MULTI_TIER):
            machine.arch.require_local_remote_counters()
        if config.mode is EmulationMode.MULTI_TIER and (
            tiered is None or accountant is None
        ):
            raise QuartzError(
                "multi-tier mode needs the tiered topology and accountant"
            )

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def open_initial(self, thread: "SimThread") -> float:
        """Start a thread's first epoch; returns the read cost in cycles."""
        pmc = self.machine.pmc(thread.core.core_id)
        values, cost_cycles = self.backend.read_values(pmc, self._event_names)
        now = self.machine.sim.now
        thread.library_state = ThreadEpochState(
            start_ns=now,
            counter_base=values,
            last_boundary_ns=now,
            tier_base=(
                self.accountant.snapshot(thread.tid)
                if self.accountant is not None
                else None
            ),
        )
        self.stats.per_thread[thread.tid] = ThreadQuartzStats(
            tid=thread.tid,
            name=thread.name,
            registered_at_ns=now,
        )
        self.stats.threads_registered += 1
        return cost_cycles

    def epoch_elapsed_ns(self, thread: "SimThread") -> float:
        """Age of the thread's current epoch (monitor's wake-up check)."""
        state = self._state_of(thread)
        return self.machine.sim.now - state.start_ns

    # ------------------------------------------------------------------
    # Monitor / exit closes: inject everything in place
    # ------------------------------------------------------------------
    def close_and_reopen(self, thread: "SimThread", trigger: EpochTrigger):
        """Close the thread's epoch, inject delay in place, reopen."""
        state = self._state_of(thread)
        self._accrue_segment(state)
        epoch_length_ns = self.machine.sim.now - state.start_ns
        cs_wall_ns, out_wall_ns = state.cs_wall_ns, state.out_wall_ns
        delay_ns, cost_cycles = self._close_measure(thread, state, trigger)
        injected_ns, amortized_ns, overhead_ns, pool_before = self._amortize(
            thread, state, delay_ns
        )
        if self.close_observers:
            self._notify_close(EpochCloseInfo(
                time_ns=self.machine.sim.now,
                tid=thread.tid,
                thread_name=thread.name,
                trigger=trigger,
                epoch_length_ns=epoch_length_ns,
                delay_computed_ns=delay_ns,
                injected_ns=injected_ns,
                amortized_ns=amortized_ns,
                overhead_added_ns=overhead_ns,
                pool_before_ns=pool_before,
                pool_after_ns=state.overhead_pool_ns,
                cs_wall_ns=cs_wall_ns,
                out_wall_ns=out_wall_ns,
                tier_delays_ns=self._last_tier_delays,
            ))
        else:
            # Observer-free fast path: nothing reads the close record, so
            # skip building it — only the sequence number must advance.
            self.closes_notified += 1
        yield Compute(cost_cycles, label="quartz-epoch-processing")
        if self.config.injection_enabled and injected_ns > 0.0:
            self.stats.thread(thread.tid).delay_injected_ns += injected_ns
            yield Spin(injected_ns, label="quartz-delay")
        if trigger is EpochTrigger.EXIT:
            thread_stats = self.stats.thread(thread.tid)
            thread_stats.overhead_residual_ns = state.overhead_pool_ns
            thread.library_state = None
        else:
            self._reopen(state)

    # ------------------------------------------------------------------
    # Sync-point boundaries (lock/unlock, notify)
    # ------------------------------------------------------------------
    def sync_boundary(
        self, thread: "SimThread", kind: str
    ) -> Optional[SyncClosePlan]:
        """Handle the attribution boundary at a sync call; maybe close.

        ``kind`` is ``"acquire"``, ``"release"``, or ``"notify"``.  Called
        by the interposition hook *before* the real call.  Returns the
        close plan (spins to run around the call) or None when the
        minimum epoch size gates the close (Section 2.3) — in which case
        only the cheap timestamp bookkeeping happened.
        """
        state = self._state_of(thread)
        self._accrue_segment(state)
        thread_stats = self.stats.thread(thread.tid)
        if self.epoch_elapsed_ns(thread) < self.config.min_epoch_ns:
            thread_stats.closes_skipped_min_epoch += 1
            return None
        epoch_length_ns = self.epoch_elapsed_ns(thread)
        cs_wall_ns, out_wall_ns = state.cs_wall_ns, state.out_wall_ns
        delay_ns, cost_cycles = self._close_measure(
            thread, state, EpochTrigger.SYNC
        )
        injected_ns, amortized_ns, overhead_ns, pool_before = self._amortize(
            thread, state, delay_ns
        )
        # The accounting keeps the true injected share even when injection
        # is switched off; only the spins (the "effective" delay) go to 0.
        effective_ns = injected_ns if self.config.injection_enabled else 0.0
        thread_stats.delay_injected_ns += effective_ns
        cs_share, out_share = self._split_delay(state, effective_ns)
        state.cs_wall_ns = 0.0
        state.out_wall_ns = 0.0
        if self.close_observers:
            self._notify_close(EpochCloseInfo(
                time_ns=self.machine.sim.now,
                tid=thread.tid,
                thread_name=thread.name,
                trigger=EpochTrigger.SYNC,
                epoch_length_ns=epoch_length_ns,
                delay_computed_ns=delay_ns,
                injected_ns=injected_ns,
                amortized_ns=amortized_ns,
                overhead_added_ns=overhead_ns,
                pool_before_ns=pool_before,
                pool_after_ns=state.overhead_pool_ns,
                cs_wall_ns=cs_wall_ns,
                out_wall_ns=out_wall_ns,
                split_delay_ns=effective_ns,
                cs_share_ns=cs_share,
                out_share_ns=out_share,
                tier_delays_ns=self._last_tier_delays,
            ))
        else:
            self.closes_notified += 1
        if kind == "release":
            # CS delay propagates to waiters; outside delay after release.
            return SyncClosePlan(cost_cycles, pre_spin_ns=cs_share,
                                 post_spin_ns=out_share)
        if kind == "acquire":
            # Outside delay before acquiring (overlaps other threads);
            # residual CS delay from earlier sections inside the lock.
            return SyncClosePlan(cost_cycles, pre_spin_ns=out_share,
                                 post_spin_ns=cs_share)
        # notify: everything must precede the communication event.
        return SyncClosePlan(cost_cycles, pre_spin_ns=cs_share + out_share,
                             post_spin_ns=0.0)

    def finish_boundary(self, thread: "SimThread", kind: str) -> None:
        """Record the post-call boundary timestamp (excludes blocked time)
        and update the critical-section depth."""
        state = thread.library_state
        if not isinstance(state, ThreadEpochState):
            return
        state.last_boundary_ns = self.machine.sim.now
        if kind == "acquire":
            state.cs_depth += 1
        elif kind == "release":
            state.cs_depth = max(0, state.cs_depth - 1)

    def mark_epoch_start(self, thread: "SimThread") -> None:
        """Start the next epoch's clock (after any injected spins)."""
        state = thread.library_state
        if not isinstance(state, ThreadEpochState):
            return
        state.start_ns = self.machine.sim.now
        state.last_boundary_ns = self.machine.sim.now

    @property
    def boundary_cost_cycles(self) -> float:
        """Cycles charged for the timestamp bookkeeping at a boundary."""
        return BOUNDARY_COST_CYCLES

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _accrue_segment(self, state: ThreadEpochState) -> None:
        elapsed = self.machine.sim.now - state.last_boundary_ns
        if elapsed <= 0:
            return
        if state.cs_depth > 0:
            state.cs_wall_ns += elapsed
        else:
            state.out_wall_ns += elapsed
        state.last_boundary_ns = self.machine.sim.now

    @staticmethod
    def _split_delay(
        state: ThreadEpochState, delay_ns: float
    ) -> tuple[float, float]:
        """Apportion a delay between in-CS and out-of-CS shares."""
        total_wall = state.cs_wall_ns + state.out_wall_ns
        if total_wall <= 0.0:
            return delay_ns, 0.0
        # Ratio first: ``delay * cs_wall`` can underflow to zero when both
        # operands are tiny even though the quotient is well-scaled.
        cs_share = delay_ns * (state.cs_wall_ns / total_wall)
        # Guard float rounding: the remainder must never go (even one ulp)
        # negative, or it would construct a negative spin.
        return cs_share, max(0.0, delay_ns - cs_share)

    def _close_measure(
        self, thread: "SimThread", state: ThreadEpochState, trigger: EpochTrigger
    ) -> tuple[float, float]:
        """Read counters, compute the epoch's delay, update stats."""
        pmc = self.machine.pmc(thread.core.core_id)
        values, _ = self.backend.read_values(pmc, self._event_names)
        # Clamp each delta at zero: counter reads are monotone on healthy
        # hardware, but wrapped/overflowed registers (real, and emulated by
        # the fault layer) would otherwise turn the Eq. 2/3 model negative.
        base = state.counter_base
        deltas = [
            value - prev if value > prev else 0.0
            for value, prev in zip(values, base)
        ]
        state.counter_base = values
        tier_deltas = None
        if self.accountant is not None:
            snapshot = self.accountant.snapshot(thread.tid)
            tier_base = state.tier_base or [(0.0, 0.0)] * len(snapshot)
            tier_deltas = [
                (
                    max(0.0, reads - base_reads),
                    max(0.0, writes - base_writes),
                )
                for (reads, writes), (base_reads, base_writes) in zip(
                    snapshot, tier_base
                )
            ]
            state.tier_base = snapshot
        self._last_tier_delays = None
        delay_ns = self._delay_from_deltas(deltas, tier_deltas)
        cost_cycles = self._close_cost_cycles
        thread_stats = self.stats.thread(thread.tid)
        thread_stats.delay_computed_ns += delay_ns
        if trigger is EpochTrigger.MONITOR:
            thread_stats.epochs_monitor += 1
        elif trigger is EpochTrigger.SYNC:
            thread_stats.epochs_sync += 1
        else:
            thread_stats.epochs_exit += 1
        return delay_ns, cost_cycles

    def _amortize(
        self, thread: "SimThread", state: ThreadEpochState, delay_ns: float
    ) -> tuple[float, float, float, float]:
        """Section 3.2 overhead amortisation against the thread's pool.

        Returns ``(injected_ns, amortized_ns, overhead_ns, pool_before_ns)``
        — everything close observers need to audit the accounting.
        """
        overhead_ns = self._overhead_per_close_ns
        pool_before = state.overhead_pool_ns
        injected_ns, amortized_ns, new_pool = amortize_delay(
            pool_before, overhead_ns, delay_ns
        )
        state.overhead_pool_ns = new_pool
        thread_stats = self.stats.thread(thread.tid)
        thread_stats.overhead_ns += overhead_ns
        thread_stats.overhead_amortized_ns += amortized_ns
        return injected_ns, amortized_ns, overhead_ns, pool_before

    def _notify_close(self, info: EpochCloseInfo) -> None:
        self.closes_notified += 1
        if not self.close_observers:
            return
        info = replace(info, close_seq=self.closes_notified)
        for observer in self.close_observers:
            observer(info)

    def _reopen(self, state: ThreadEpochState) -> None:
        state.start_ns = self.machine.sim.now
        state.last_boundary_ns = self.machine.sim.now
        state.cs_wall_ns = 0.0
        state.out_wall_ns = 0.0

    # ------------------------------------------------------------------
    # The model
    # ------------------------------------------------------------------
    def _delay_from_deltas(
        self, deltas: list[float], tier_deltas: Optional[list] = None
    ) -> float:
        """Counter deltas for one epoch -> required delay (ns).

        *deltas* is positional, aligned with ``self._event_names``;
        *tier_deltas* carries the accountant's per-tier (reads, writes)
        deltas in multi-tier mode.
        """
        stall_cycles = deltas[self._i_stalls]
        hits = deltas[self._i_hits]
        if self.config.latency_model == "simple":
            # Eq. (1): every LLC miss treated as serialized — ignores MLP
            # (the Figure 2 strawman, kept for the model ablation).
            return eq1_simple_delay(
                self._total_misses(deltas),
                self.config.nvm_read_latency_ns,
                self.calibration.dram_local_ns,
            )
        if self.config.mode is EmulationMode.PM:
            misses = self._total_misses(deltas)
            if hits + misses <= 0:
                # Eq. (3) rejects a positive stall count with no LLC
                # references (inconsistent PMC feed); the engine keeps
                # the run alive and counts the discarded epoch instead.
                if stall_cycles > 0:
                    self.stats.model_warnings += 1
                return 0.0
            ldm_stall_cycles = eq3_ldm_stall(
                stall_cycles, hits, misses, self.calibration.w_local
            )
            ldm_stall_ns = ldm_stall_cycles / self._freq_ghz
            return eq2_delay_from_stalls(
                ldm_stall_ns,
                self.config.nvm_read_latency_ns,
                self.calibration.dram_local_ns,
            )
        if self.config.mode is EmulationMode.MULTI_TIER:
            return self._multi_tier_delay(deltas, tier_deltas)
        # Two-memory mode (Section 3.3): apportion stalls, slow only the
        # remote (virtual NVM) share.
        local_misses = deltas[self._i_local]
        remote_misses = deltas[self._i_remote]
        misses = local_misses + remote_misses
        if misses <= 0:
            if stall_cycles > 0:
                self.stats.model_warnings += 1
            return 0.0
        w_effective = (
            local_misses * self.calibration.w_local
            + remote_misses * self.calibration.w_remote
        ) / misses
        ldm_stall_cycles = eq3_ldm_stall(stall_cycles, hits, misses, w_effective)
        ldm_stall_ns = ldm_stall_cycles / self._freq_ghz
        remote_stall_ns = eq4_remote_stall_split(
            ldm_stall_ns,
            local_misses,
            remote_misses,
            self.calibration.dram_local_ns,
            self.calibration.dram_remote_ns,
        )
        return eq2_delay_from_stalls(
            remote_stall_ns,
            self.config.nvm_read_latency_ns,
            self.calibration.dram_remote_ns,
        )

    def _multi_tier_delay(
        self, deltas: list[float], tier_deltas: Optional[list]
    ) -> float:
        """The N-tier generalization of the Section 3.3 split.

        The hardware only separates local vs. remote LLC misses; the
        accountant's per-tier reference counts apportion the *remote*
        misses across the emulated tiers, the generalized Eq. (4) splits
        the stall time latency-weighted across all tiers, and each
        tier's share is stretched to its own read/write targets.  Sets
        ``_last_tier_delays`` for observers (per-tier delay
        conservation), and mirrors the directory's placement/migration
        report into the run statistics.
        """
        tiers = self.config.tiers
        assert tiers is not None and tier_deltas is not None
        if self.tiered is not None:
            self.stats.tier_report = self.tiered.directory.report()
        stall_cycles = deltas[self._i_stalls]
        hits = deltas[self._i_hits]
        local_misses = deltas[self._i_local]
        remote_misses = deltas[self._i_remote]
        misses = local_misses + remote_misses
        zero = tuple(0.0 for _ in tiers)
        if misses <= 0:
            if stall_cycles > 0:
                self.stats.model_warnings += 1
            self._last_tier_delays = zero
            return 0.0
        w_effective = (
            local_misses * self.calibration.w_local
            + remote_misses * self.calibration.w_remote
        ) / misses
        ldm_stall_cycles = eq3_ldm_stall(stall_cycles, hits, misses, w_effective)
        ldm_stall_ns = ldm_stall_cycles / self._freq_ghz
        # Apportion the hardware's remote-miss count across the emulated
        # tiers in proportion to the software-tracked references (the
        # counters are ground truth for *how many* misses went remote;
        # the directory knows *where* they went).  With no tracked
        # references the split is even — deterministic, and only reached
        # when remote traffic bypassed every tiered region.
        totals = [reads + writes for reads, writes in tier_deltas[1:]]
        tracked = sum(totals)
        if tracked > 0:
            references = [local_misses] + [
                remote_misses * (count / tracked) for count in totals
            ]
        else:
            share = remote_misses / (len(tiers) - 1)
            references = [local_misses] + [share] * (len(tiers) - 1)
        backing = [self.calibration.dram_local_ns] + [
            self.calibration.dram_remote_ns
        ] * (len(tiers) - 1)
        shares = eqN_tier_stall_split(ldm_stall_ns, references, backing)
        tier_delays = [0.0]
        total_delay = 0.0
        for index in range(1, len(tiers)):
            reads, writes = tier_deltas[index]
            read_delay, write_delay = tier_direction_delay(
                shares[index],
                reads,
                writes,
                tiers[index].read_latency_ns,
                tiers[index].write_latency_ns,
                self.calibration.dram_remote_ns,
            )
            delay = read_delay + write_delay
            tier_delays.append(delay)
            total_delay += delay
        self._last_tier_delays = tuple(tier_delays)
        return total_delay

    def _total_misses(self, deltas: list[float]) -> float:
        if self._i_combined is not None:
            return deltas[self._i_combined]
        return deltas[self._i_local] + deltas[self._i_remote]

    def _state_of(self, thread: "SimThread") -> ThreadEpochState:
        state = thread.library_state
        if not isinstance(state, ThreadEpochState):
            raise QuartzError(
                f"thread {thread.name!r} has no open epoch (not registered?)"
            )
        return state
