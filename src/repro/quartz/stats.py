"""Emulation statistics and user feedback (Section 3.2).

Quartz *"is augmented with specially designed statistics to provide useful
feedback to the user: this statistics reports whether the emulator
overhead was amortized entirely or not, and it indicates whether adjusting
the epoch size may improve emulation accuracy"*.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Optional


class EpochTrigger(enum.Enum):
    """Why an epoch was closed."""

    #: The monitor found the epoch exceeding the max size (Figure 5).
    MONITOR = "monitor"
    #: An inter-thread communication point (lock release / notify).
    SYNC = "sync"
    #: Thread exit (final drain of accumulated delay).
    EXIT = "exit"


@dataclass
class ThreadQuartzStats:
    """Per-thread accounting of the epoch machinery."""

    tid: int
    name: str
    registered_at_ns: float
    epochs_monitor: int = 0
    epochs_sync: int = 0
    epochs_exit: int = 0
    #: Sync-triggered closes suppressed by the minimum epoch size.
    closes_skipped_min_epoch: int = 0
    #: Total delay the model asked for.
    delay_computed_ns: float = 0.0
    #: Delay actually injected (after overhead amortisation).
    delay_injected_ns: float = 0.0
    #: Total epoch-processing overhead (counter reads + model).
    overhead_ns: float = 0.0
    #: Overhead recovered by shaving injected delays.
    overhead_amortized_ns: float = 0.0
    #: Overhead never amortised by thread end (carried-over remainder).
    overhead_residual_ns: float = 0.0

    @property
    def epochs_total(self) -> int:
        """All epoch closes, regardless of trigger."""
        return self.epochs_monitor + self.epochs_sync + self.epochs_exit

    def to_dict(self) -> dict:
        """JSON-safe form (all counters plus the derived total)."""
        payload = dataclasses.asdict(self)
        payload["epochs_total"] = self.epochs_total
        return payload


@dataclass
class QuartzStats:
    """Aggregate emulator statistics."""

    per_thread: dict[int, ThreadQuartzStats] = field(default_factory=dict)
    threads_registered: int = 0
    init_cost_cycles: float = 0.0
    monitor_wakeups: int = 0
    signals_posted: int = 0
    #: Epochs whose positive stall time had to be discarded because the
    #: reference denominator was zero (an inconsistent PMC feed) — the
    #: telemetry side of the Eq. (3) consistency check.
    model_warnings: int = 0
    #: Tier placement/migration summary of a multi-tier run (see
    #: :meth:`repro.quartz.tiers.TierDirectory.report`); None otherwise.
    tier_report: Optional[dict] = None

    def thread(self, tid: int) -> ThreadQuartzStats:
        """Stats record of one registered thread."""
        return self.per_thread[tid]

    # -- aggregates -------------------------------------------------------
    def _sum(self, attribute: str) -> float:
        return sum(getattr(stats, attribute) for stats in self.per_thread.values())

    @property
    def epochs_total(self) -> int:
        """Epoch closes across all threads."""
        return int(self._sum("epochs_total"))

    @property
    def delay_injected_ns(self) -> float:
        """Total injected delay across all threads."""
        return self._sum("delay_injected_ns")

    @property
    def delay_computed_ns(self) -> float:
        """Total model-computed delay across all threads."""
        return self._sum("delay_computed_ns")

    @property
    def overhead_ns(self) -> float:
        """Total epoch-processing overhead across all threads."""
        return self._sum("overhead_ns")

    @property
    def overhead_amortized_ns(self) -> float:
        """Overhead recovered by delay shaving across all threads."""
        return self._sum("overhead_amortized_ns")

    @property
    def overhead_residual_ns(self) -> float:
        """Overhead that was never amortised (still pending at exit)."""
        return self._sum("overhead_residual_ns")

    @property
    def fully_amortized(self) -> bool:
        """True if all processing overhead was hidden inside delays."""
        return self.overhead_residual_ns <= 1e-9

    def to_dict(self) -> dict:
        """JSON-safe form: globals, aggregates, and per-thread records.

        Per-thread records are emitted sorted by tid so the output is
        deterministic; this is what the JSONL trace's ``stats`` lines
        carry (see :mod:`repro.quartz.trace`).
        """
        return {
            "threads_registered": self.threads_registered,
            "init_cost_cycles": self.init_cost_cycles,
            "monitor_wakeups": self.monitor_wakeups,
            "signals_posted": self.signals_posted,
            "epochs_total": self.epochs_total,
            "delay_computed_ns": self.delay_computed_ns,
            "delay_injected_ns": self.delay_injected_ns,
            "overhead_ns": self.overhead_ns,
            "overhead_amortized_ns": self.overhead_amortized_ns,
            "overhead_residual_ns": self.overhead_residual_ns,
            "fully_amortized": self.fully_amortized,
            "model_warnings": self.model_warnings,
            "tier_report": self.tier_report,
            "per_thread": [
                self.per_thread[tid].to_dict()
                for tid in sorted(self.per_thread)
            ],
        }

    def feedback(self) -> str:
        """The Section 3.2 tuning hint."""
        if self.epochs_total == 0:
            return "no epochs closed; nothing to report"
        if self.fully_amortized:
            return (
                "emulator overhead fully amortized into injected delays; "
                "epoch size is adequate"
            )
        residual_fraction = self.overhead_residual_ns / max(self.overhead_ns, 1e-9)
        return (
            f"{residual_fraction:.0%} of epoch-processing overhead was NOT "
            "amortized; consider a larger epoch size (or the workload is "
            "too compute-bound for the configured latency to absorb it)"
        )
