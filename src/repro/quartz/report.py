"""Human-readable emulation reports (the Section 3.2 statistics surface).

Renders :class:`~repro.quartz.stats.QuartzStats` — per-thread and
aggregate — into the text report a user inspects after a run to decide
whether the epoch configuration suited the workload.
"""

from __future__ import annotations

from repro.quartz.config import QuartzConfig
from repro.quartz.stats import QuartzStats
from repro.units import ns_to_ms


def _per_thread_lines(stats: QuartzStats) -> list[str]:
    header = (
        f"  {'thread':<16} {'epochs':>6} {'mon':>5} {'sync':>5} "
        f"{'skip':>5} {'injected ms':>11} {'overhead us':>11}"
    )
    lines = [header, "  " + "-" * (len(header) - 2)]
    for record in sorted(stats.per_thread.values(), key=lambda r: r.tid):
        lines.append(
            f"  {record.name:<16} {record.epochs_total:>6} "
            f"{record.epochs_monitor:>5} {record.epochs_sync:>5} "
            f"{record.closes_skipped_min_epoch:>5} "
            f"{record.delay_injected_ns / 1e6:>11.3f} "
            f"{record.overhead_ns / 1e3:>11.1f}"
        )
    return lines


def render_report(stats: QuartzStats, config: QuartzConfig | None = None) -> str:
    """Render a full emulation report."""
    lines = ["=== Quartz emulation report ==="]
    if config is not None:
        lines.append(
            f"target: {config.nvm_read_latency_ns:.0f} ns read latency"
            + (
                f", {config.nvm_bandwidth_gbps:.1f} GB/s bandwidth"
                if config.nvm_bandwidth_gbps is not None
                else ""
            )
            + (
                f", {config.nvm_write_latency_ns:.0f} ns write latency"
                if config.nvm_write_latency_ns is not None
                else ""
            )
        )
        lines.append(
            f"epochs: max {ns_to_ms(config.max_epoch_ns):.2f} ms, "
            f"min {ns_to_ms(config.min_epoch_ns):.2f} ms, "
            f"monitor every "
            f"{ns_to_ms(config.effective_monitor_interval_ns):.2f} ms, "
            f"{config.counter_backend} counters"
        )
    lines.append(
        f"threads registered: {stats.threads_registered}; "
        f"epochs closed: {stats.epochs_total}; "
        f"monitor wakeups: {stats.monitor_wakeups}; "
        f"signals posted: {stats.signals_posted}"
    )
    lines.append(
        f"delay: computed {stats.delay_computed_ns / 1e6:.3f} ms, "
        f"injected {stats.delay_injected_ns / 1e6:.3f} ms"
    )
    lines.append(
        f"overhead: {stats.overhead_ns / 1e6:.3f} ms total, "
        f"{stats.overhead_amortized_ns / 1e6:.3f} ms amortized, "
        f"{stats.overhead_residual_ns / 1e6:.3f} ms residual"
    )
    if stats.per_thread:
        lines.append("per-thread:")
        lines.extend(_per_thread_lines(stats))
    lines.append(f"feedback: {stats.feedback()}")
    return "\n".join(lines)
