"""The Quartz user-mode library (Section 3.1, Figure 5).

Attaching to a process (the ``LD_PRELOAD`` moment) performs the library
initialisation:

1. load the kernel module, program the Table 1 counters, enable rdpmc;
2. throttle DRAM bandwidth to the target NVM bandwidth;
3. interpose on ``pthread_create`` (thread registration),
   ``pthread_mutex_unlock`` / ``pthread_cond_notify`` (sync-triggered
   epoch closes), ``pmalloc``/``pfree``/``pflush``/``pcommit`` (the PM
   API);
4. install the epoch signal handler;
5. fork the monitor thread, which periodically interrupts any
   application thread whose epoch exceeds the maximum size.

Everything the emulator learns about the application it learns through
the same channels the real library had: performance counters, the TSC,
and the interposed calls.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import QuartzError
from repro.ops import Compute, Sleep, Spin
from repro.os.interpose import ORIGINAL
from repro.os.system import SimOS
from repro.os.thread import Signal, SimThread
from repro.quartz.bandwidth import BandwidthThrottler
from repro.quartz.calibration import CalibrationData, calibrate_arch
from repro.quartz.config import (
    EmulationMode,
    INIT_COST_CYCLES,
    QuartzConfig,
    THREAD_REGISTRATION_COST_CYCLES,
    WriteModel,
)
from repro.quartz.counters import backend_by_name
from repro.quartz.epoch import EpochEngine
from repro.quartz.kernel_module import QuartzKernelModule
from repro.quartz.pm import PmWriteEmulator
from repro.quartz.stats import EpochTrigger, QuartzStats
from repro.quartz.tiers import TierAccountant, build_policy
from repro.quartz.virtual_topology import TieredTopology, VirtualTopology

if TYPE_CHECKING:
    from repro.os.thread import ThreadContext


class Quartz:
    """One attachment of the emulator to a simulated process."""

    def __init__(
        self,
        os: SimOS,
        config: QuartzConfig,
        calibration: Optional[CalibrationData] = None,
    ):
        self.os = os
        self.machine = os.machine
        self.config = config
        self.calibration = calibration
        self.kernel_module = QuartzKernelModule(self.machine)
        self.stats = QuartzStats()
        self.virtual_topology: Optional[VirtualTopology] = None
        self.tier_accountant: Optional[TierAccountant] = None
        self.write_emulator: Optional[PmWriteEmulator] = None
        self._engine: Optional[EpochEngine] = None
        self._throttler: Optional[BandwidthThrottler] = None
        self._registered: dict[int, SimThread] = {}
        self._monitor_thread: Optional[SimThread] = None
        self._attached = False
        self._init_cost_charged = False

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Initialise the library (must precede application threads)."""
        if self._attached:
            raise QuartzError("Quartz already attached")
        config = self.config
        if self.calibration is None:
            self.calibration = calibrate_arch(self.machine.arch)
        if self.calibration.arch_name != self.machine.arch.name:
            raise QuartzError(
                f"calibration is for {self.calibration.arch_name}, "
                f"machine is {self.machine.arch.name}"
            )
        backing_latency = (
            self.calibration.dram_remote_ns
            if config.mode in (EmulationMode.TWO_MEMORY, EmulationMode.MULTI_TIER)
            else self.calibration.dram_local_ns
        )
        if config.mode is EmulationMode.MULTI_TIER:
            # Every emulated tier is backed by the sibling socket's DRAM:
            # each per-direction target must be reachable by slowing it
            # down (equal latencies are the zero-delay degenerate case).
            assert config.tiers is not None
            for tier in config.tiers[1:]:
                for direction, target in (
                    ("read", tier.read_latency_ns),
                    ("write", tier.write_latency_ns),
                ):
                    if target < backing_latency:
                        raise QuartzError(
                            f"tier {tier.name!r}: target {direction} "
                            f"latency {target} ns is below the backing "
                            f"DRAM latency {backing_latency:.0f} ns; "
                            "DRAM can only be slowed down"
                        )
        elif config.nvm_read_latency_ns < backing_latency:
            raise QuartzError(
                f"target NVM latency {config.nvm_read_latency_ns} ns is "
                f"below the backing DRAM latency {backing_latency:.0f} ns; "
                "DRAM can only be slowed down"
            )

        self.kernel_module.load()
        self.kernel_module.setup_counters()

        nvm_node = 0
        if config.mode is EmulationMode.TWO_MEMORY:
            self.virtual_topology = VirtualTopology(self.machine)
        elif config.mode is EmulationMode.MULTI_TIER:
            assert config.tiers is not None
            policy = build_policy(
                config.placement_policy,
                order=config.placement_order,
                promote_threshold_accesses=config.promote_threshold_accesses,
            )
            self.virtual_topology = TieredTopology(
                self.machine, config.tiers, policy
            )
        if self.virtual_topology is not None:
            self.os.default_cpu_node = self.virtual_topology.compute_sockets[0]
            nvm_node = self.virtual_topology.nvm_node_for(
                self.virtual_topology.compute_sockets[0]
            )
            self.os.interpose.register_sync_hook(
                "pmalloc", self.virtual_topology.pmalloc_hook
            )
            self.os.interpose.register_sync_hook(
                "pfree", self.virtual_topology.pfree_hook
            )
        if isinstance(self.virtual_topology, TieredTopology):
            # Per-tier reference accounting rides the dispatch-observer
            # seam; any observer already installed there is chained.
            self.tier_accountant = TierAccountant(
                self.virtual_topology.directory,
                self.virtual_topology.policy,
                previous_observer=self.os.interpose.dispatch_observer,
            )
            self.os.interpose.dispatch_observer = self.tier_accountant
        self._throttler = BandwidthThrottler(
            self.kernel_module, self.calibration, config, nvm_node
        )
        self._throttler.apply()

        backend = backend_by_name(config.counter_backend)
        self._engine = EpochEngine(
            self.machine,
            config,
            self.calibration,
            backend,
            self.stats,
            tiered=(
                self.virtual_topology
                if isinstance(self.virtual_topology, TieredTopology)
                else None
            ),
            accountant=self.tier_accountant,
        )

        if config.nvm_write_latency_ns is not None or (
            config.mode is EmulationMode.MULTI_TIER
        ):
            self.write_emulator = PmWriteEmulator(
                self.machine,
                config,
                self.calibration,
                directory=(
                    self.virtual_topology.directory
                    if isinstance(self.virtual_topology, TieredTopology)
                    else None
                ),
            )
            self.os.interpose.register_op_hook(
                "pflush", self.write_emulator.pflush_hook
            )
            if config.write_model is WriteModel.PCOMMIT:
                self.os.interpose.register_op_hook(
                    "pcommit", self.write_emulator.pcommit_hook
                )
            # Posted-flush deadlines must not outlive their thread: a
            # reused tid would inherit them (see PmWriteEmulator).
            self.os.thread_finished_callbacks.append(
                self.write_emulator.discard_thread
            )

        self.os.interpose.register_op_hook("thread_begin", self._thread_begin_hook)
        self.os.interpose.register_op_hook("thread_end", self._thread_end_hook)
        # Section 2.3: epochs close when a thread *enters and/or exits* a
        # critical section, so delay accumulated outside the lock is
        # injected before acquiring (where it overlaps other threads) and
        # delay from inside is injected before releasing (where it
        # propagates to waiters, Figure 4b).
        self.os.interpose.register_op_hook(
            "pthread_mutex_lock", self._make_sync_hook("acquire")
        )
        self.os.interpose.register_op_hook(
            "pthread_mutex_unlock", self._make_sync_hook("release")
        )
        self.os.interpose.register_op_hook(
            "pthread_cond_notify", self._make_sync_hook("notify")
        )
        self.os.interpose.register_op_hook(
            "barrier_wait", self._make_sync_hook("notify")
        )
        self.os.signal_handlers[config.epoch_signal] = self._signal_handler

        self._attached = True
        self._monitor_thread = self.os.create_thread(
            self._monitor_body,
            name="quartz-monitor",
            cpu_node=config.monitor_socket,
            daemon=True,
        )

    def detach(self) -> None:
        """Unload: drop hooks, restore registers, stop the monitor."""
        if not self._attached:
            raise QuartzError("Quartz is not attached")
        self._attached = False
        self.os.interpose.unregister_all()
        if self.tier_accountant is not None:
            # Restore whatever observer the accountant chained over.
            self.os.interpose.dispatch_observer = (
                self.tier_accountant.previous_observer
            )
            self.tier_accountant = None
        if self.write_emulator is not None:
            try:
                self.os.thread_finished_callbacks.remove(
                    self.write_emulator.discard_thread
                )
            except ValueError:
                pass
        self.os.signal_handlers.pop(self.config.epoch_signal, None)
        if self._throttler is not None:
            self._throttler.reset()
        self.kernel_module.unload()

    @property
    def attached(self) -> bool:
        """True while the library is active."""
        return self._attached

    @property
    def registered_thread_count(self) -> int:
        """Application threads currently under emulation."""
        return len(self._registered)

    @property
    def epoch_engine(self) -> Optional[EpochEngine]:
        """The live epoch engine (None before attach).

        Public so observers — the epoch trace, the invariant monitor, the
        crash injector — can subscribe to ``close_observers`` without
        reaching into privates.
        """
        return self._engine

    # ------------------------------------------------------------------
    # Interposition hooks (generators of ops)
    # ------------------------------------------------------------------
    def _thread_begin_hook(self, os: SimOS, thread: SimThread, op):
        if thread.daemon:
            return  # library/monitor threads are not emulated
        assert self._engine is not None
        if not self._init_cost_charged:
            self._init_cost_charged = True
            if self.config.include_init_cost:
                self.stats.init_cost_cycles = INIT_COST_CYCLES
                yield Compute(INIT_COST_CYCLES, label="quartz-library-init")
        if self.config.include_registration_cost:
            yield Compute(
                THREAD_REGISTRATION_COST_CYCLES, label="quartz-thread-registration"
            )
        read_cost = self._engine.open_initial(thread)
        self._registered[thread.tid] = thread
        yield Compute(read_cost, label="quartz-initial-counter-read")

    def _thread_end_hook(self, os: SimOS, thread: SimThread, op):
        if thread.tid not in self._registered:
            return
        assert self._engine is not None
        yield from self._engine.close_and_reopen(thread, EpochTrigger.EXIT)
        del self._registered[thread.tid]

    def _make_sync_hook(self, kind: str):
        """Build the interposer for one sync symbol.

        This is the Figure 4(b) mechanism: at a release, the delay
        accumulated inside the critical section spins *before* the unlock
        so it propagates to every waiter, while delay from outside the
        section spins after it; an acquire mirrors the split.  The
        minimum epoch size gates the close (Section 2.3), in which case
        only cheap timestamp bookkeeping runs.
        """

        def hook(os: SimOS, thread: SimThread, op):
            engine = self._engine
            assert engine is not None
            emulated = (
                thread.tid in self._registered
                and thread.library_state is not None
            )
            plan = None
            if emulated:
                yield Compute(
                    engine.boundary_cost_cycles, label="quartz-sync-boundary"
                )
                plan = engine.sync_boundary(thread, kind)
            if plan is not None:
                yield Compute(plan.cost_cycles, label="quartz-epoch-processing")
                if plan.pre_spin_ns > 0:
                    yield Spin(plan.pre_spin_ns, label="quartz-delay-pre")
            result = yield ORIGINAL
            if emulated:
                engine.finish_boundary(thread, kind)
            if plan is not None:
                if plan.post_spin_ns > 0:
                    yield Spin(plan.post_spin_ns, label="quartz-delay-post")
                engine.mark_epoch_start(thread)
            return result

        return hook

    def _signal_handler(self, thread: SimThread, signal: Signal):
        if thread.tid in self._registered and thread.library_state is not None:
            assert self._engine is not None
            yield from self._engine.close_and_reopen(thread, EpochTrigger.MONITOR)

    # ------------------------------------------------------------------
    # The monitor thread (Figure 5)
    # ------------------------------------------------------------------
    def _monitor_body(self, ctx: "ThreadContext"):
        interval = self.config.effective_monitor_interval_ns
        while self._attached:
            yield Sleep(interval)
            fault_engine = self.os.fault_engine
            if fault_engine is not None and fault_engine.monitor_skips_wakeup():
                continue  # a missed wake-up: no scan, no signals this tick
            self.stats.monitor_wakeups += 1
            assert self._engine is not None
            for thread in list(self._registered.values()):
                if thread.finished or thread.library_state is None:
                    continue
                if self._engine.epoch_elapsed_ns(thread) > self.config.max_epoch_ns:
                    if self.os.post_signal(
                        thread, Signal(self.config.epoch_signal)
                    ):
                        self.stats.signals_posted += 1
