"""Offline calibration: measured latencies and the bandwidth table.

The paper's kernel-module helper *measures* the machine rather than
trusting datasheets: it estimates the maximum bandwidth for each throttle
register value by timing streaming accesses ("saves these values for
later use by the user-mode library", Section 3.1), and the library needs
measured DRAM and L3 latencies for Eqs. (2)-(4).

We reproduce that honestly: calibration runs short measurement workloads
on a *private* simulated machine of the same architecture and derives all
constants from observed timings.  The small systematic errors this
introduces (residual LLC hits in the latency chase, issue overhead in the
streaming kernel) flow into the emulator's accuracy exactly as they do on
metal.

Results are cached per (architecture, seed): calibration is a one-time,
per-machine step, like the paper's helper program.  Two cache layers
exist: a process-local dict, and a versioned on-disk JSON cache under
``~/.cache/quartz-repro/`` (override with ``QUARTZ_REPRO_CACHE_DIR``)
keyed by (architecture fingerprint, seed, bandwidth points, schema
version).  The disk cache is what lets parallel experiment workers share
one calibration pass instead of each re-measuring every testbed; writes
are atomic (write-temp-then-rename) and corrupted files are treated as
misses, never errors.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import CalibrationError
from repro.hw.arch import ArchSpec
from repro.hw.machine import Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.os.system import SimOS
from repro.sim import Simulator
from repro.units import GIB, MIB


@dataclass(frozen=True)
class CalibrationData:
    """Measured machine constants consumed by the Quartz library."""

    arch_name: str
    dram_local_ns: float
    dram_remote_ns: float
    l3_ns: float
    #: (register value, achieved bytes/ns), ascending in register value.
    bandwidth_table: tuple[tuple[int, float], ...] = field(repr=False)

    @property
    def w_local(self) -> float:
        """W ratio (local DRAM / L3 latency) for Eq. (3)."""
        return self.dram_local_ns / self.l3_ns

    @property
    def w_remote(self) -> float:
        """W ratio for remote-DRAM-backed (virtual NVM) accesses."""
        return self.dram_remote_ns / self.l3_ns

    @property
    def peak_bandwidth(self) -> float:
        """Highest measured bandwidth (bytes/ns)."""
        return max(rate for _, rate in self.bandwidth_table)

    def register_for_bandwidth(self, target_bytes_per_ns: float) -> int:
        """Smallest register value achieving *target* bandwidth.

        Interpolates linearly between measured points (the linearity
        Figure 8 establishes).  A target above the attainable maximum
        returns the unthrottled register.
        """
        if target_bytes_per_ns <= 0:
            raise CalibrationError(f"target bandwidth must be positive: {target_bytes_per_ns}")
        previous_register, previous_rate = None, None
        for register, rate in self.bandwidth_table:
            if rate >= target_bytes_per_ns:
                if previous_register is None or previous_rate is None:
                    return register
                span = rate - previous_rate
                if span <= 0:
                    return register
                fraction = (target_bytes_per_ns - previous_rate) / span
                return min(
                    THROTTLE_REGISTER_MAX,
                    int(round(previous_register + fraction * (register - previous_register))),
                )
            previous_register, previous_rate = register, rate
        return THROTTLE_REGISTER_MAX


def _run_threads(os: SimOS, bodies: list, cpu_node: int = 0) -> float:
    """Run bodies to completion; returns elapsed simulated ns."""
    start = os.sim.now
    for index, body in enumerate(bodies):
        os.create_thread(body, name=f"calibrate{index}", cpu_node=cpu_node)
    os.run_to_completion()
    return os.sim.now - start


def _measure_chase_latency(
    arch: ArchSpec, node: int, footprint_bytes: int, accesses: int, seed: int
) -> float:
    """Pointer-chase latency measurement (the MemLat idea, Section 4.4)."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine)
    durations: dict[str, float] = {}

    def body(ctx):
        region = ctx.malloc(
            footprint_bytes, page_size=PageSize.HUGE_2M, label="calibration-chase"
        )
        start = ctx.now_ns
        yield MemBatch(region, accesses, PatternKind.CHASE)
        durations["elapsed"] = ctx.now_ns - start

    os.create_thread(body, cpu_node=0, mem_node=node)
    os.run_to_completion()
    return durations["elapsed"] / accesses


def _measure_bandwidth(arch: ArchSpec, register: int, seed: int) -> float:
    """Saturating streaming-store bandwidth at one register setting.

    Forks several threads, each streaming through part of a region with
    non-temporal stores — the paper's SSE-streaming helper (Section 3.1).
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch)
    machine.controller(0).program_throttle_register(register, privileged=True)
    os = SimOS(machine)
    stream_threads = 4
    bytes_per_thread = 64 * MIB
    lines = bytes_per_thread // 64

    def body(ctx):
        region = ctx.malloc(bytes_per_thread, label="calibration-stream")
        yield MemBatch(
            region,
            accesses=lines * 8,
            pattern=PatternKind.SEQUENTIAL,
            stride_bytes=8,
            is_store=True,
            non_temporal=True,
        )

    elapsed = _run_threads(os, [body] * stream_threads)
    if elapsed <= 0:
        raise CalibrationError("streaming measurement produced zero duration")
    return stream_threads * bytes_per_thread / elapsed


#: Bump when the measurement methodology or the file layout changes;
#: older cache files are then ignored (treated as misses).
CALIBRATION_CACHE_SCHEMA = 1

_CACHE: dict[tuple[str, int, int], CalibrationData] = {}


@dataclass
class CalibrationCacheCounters:
    """Observability for the two calibration cache layers."""

    #: Served from the process-local dict.
    memory_hits: int = 0
    #: Served from the on-disk JSON cache.
    disk_hits: int = 0
    #: Full measurement runs (cold or refreshed).
    measurements: int = 0
    #: Disk files rejected (corrupt, stale schema, fingerprint mismatch).
    rejected_files: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (
            self.memory_hits, self.disk_hits,
            self.measurements, self.rejected_files,
        )


#: Process-global counters; reset with :func:`reset_cache_counters`.
cache_counters = CalibrationCacheCounters()


def reset_cache_counters() -> None:
    """Zero the calibration-cache counters (test/CLI hook).

    Mutates in place so references imported elsewhere stay live.
    """
    cache_counters.memory_hits = 0
    cache_counters.disk_hits = 0
    cache_counters.measurements = 0
    cache_counters.rejected_files = 0


def calibration_cache_dir() -> Path:
    """Directory holding persisted calibration files.

    ``QUARTZ_REPRO_CACHE_DIR`` overrides; otherwise XDG semantics
    (``$XDG_CACHE_HOME/quartz-repro`` or ``~/.cache/quartz-repro``).
    """
    override = os.environ.get("QUARTZ_REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "quartz-repro"


def arch_fingerprint(arch: ArchSpec) -> str:
    """Stable digest of everything that feeds the measurement.

    Any change to the architecture spec (latencies, cache geometry,
    counter fidelity, ...) changes the fingerprint and invalidates the
    persisted calibration for that testbed.
    """
    payload = json.dumps(dataclasses.asdict(arch), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _cache_path(arch: ArchSpec, seed: int, bandwidth_points: int) -> Path:
    return calibration_cache_dir() / (
        f"calibration-{arch.name}-{arch_fingerprint(arch)}"
        f"-s{seed}-b{bandwidth_points}"
        f".v{CALIBRATION_CACHE_SCHEMA}.json"
    )


def _load_cached(
    arch: ArchSpec, seed: int, bandwidth_points: int
) -> Optional[CalibrationData]:
    """Load one persisted calibration; any defect is a miss, not a crash."""
    path = _cache_path(arch, seed, bandwidth_points)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError, UnicodeDecodeError):
        cache_counters.rejected_files += 1
        return None
    try:
        if payload["schema"] != CALIBRATION_CACHE_SCHEMA:
            raise ValueError("schema mismatch")
        if payload["fingerprint"] != arch_fingerprint(arch):
            raise ValueError("fingerprint mismatch")
        if payload["seed"] != seed or payload["bandwidth_points"] != bandwidth_points:
            raise ValueError("key mismatch")
        table = tuple(
            (int(register), float(rate))
            for register, rate in payload["bandwidth_table"]
        )
        if not table:
            raise ValueError("empty bandwidth table")
        return CalibrationData(
            arch_name=str(payload["arch_name"]),
            dram_local_ns=float(payload["dram_local_ns"]),
            dram_remote_ns=float(payload["dram_remote_ns"]),
            l3_ns=float(payload["l3_ns"]),
            bandwidth_table=table,
        )
    except (KeyError, TypeError, ValueError):
        cache_counters.rejected_files += 1
        return None


def _store_cached(
    arch: ArchSpec, seed: int, bandwidth_points: int, data: CalibrationData
) -> None:
    """Persist atomically; an unwritable cache dir is not an error."""
    path = _cache_path(arch, seed, bandwidth_points)
    payload = {
        "schema": CALIBRATION_CACHE_SCHEMA,
        "fingerprint": arch_fingerprint(arch),
        "arch_name": data.arch_name,
        "seed": seed,
        "bandwidth_points": bandwidth_points,
        "dram_local_ns": data.dram_local_ns,
        "dram_remote_ns": data.dram_remote_ns,
        "l3_ns": data.l3_ns,
        "bandwidth_table": [list(point) for point in data.bandwidth_table],
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Temp file in the same directory so os.replace stays atomic.
        handle = tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", dir=path.parent,
            prefix=path.name + ".", suffix=".tmp", delete=False,
        )
        with handle:
            json.dump(payload, handle)
        os.replace(handle.name, path)
    except OSError:
        return


def calibrate_arch(
    arch: ArchSpec,
    seed: int = 0,
    bandwidth_points: int = 9,
    use_cache: bool = True,
    refresh: bool = False,
) -> CalibrationData:
    """Measure one architecture's constants (cached per seed).

    ``use_cache=False`` bypasses both cache layers and stores nothing;
    ``refresh=True`` ignores existing entries but overwrites them with
    the fresh measurement (the ``quartz-repro calibrate --refresh``
    escape hatch).
    """
    key = (arch.name, seed, bandwidth_points)
    if use_cache and not refresh:
        if key in _CACHE:
            cache_counters.memory_hits += 1
            return _CACHE[key]
        cached = _load_cached(arch, seed, bandwidth_points)
        if cached is not None:
            cache_counters.disk_hits += 1
            _CACHE[key] = cached
            return cached
    cache_counters.measurements += 1
    dram_local = _measure_chase_latency(
        arch, node=0, footprint_bytes=4 * GIB, accesses=20_000, seed=seed
    )
    dram_remote = _measure_chase_latency(
        arch, node=1, footprint_bytes=4 * GIB, accesses=20_000, seed=seed + 1
    )
    # L3 latency: a chase footprint far beyond L2 but well inside LLC.
    l3 = _measure_chase_latency(
        arch, node=0, footprint_bytes=8 * MIB, accesses=20_000, seed=seed + 2
    )
    if not dram_local < dram_remote:
        raise CalibrationError(
            f"calibration nonsense: local {dram_local} >= remote {dram_remote}"
        )
    registers = [
        round(index * THROTTLE_REGISTER_MAX / (bandwidth_points - 1))
        for index in range(bandwidth_points)
    ]
    table = tuple(
        (register, _measure_bandwidth(arch, register, seed=seed + 10 + register))
        for register in registers
    )
    data = CalibrationData(
        arch_name=arch.name,
        dram_local_ns=dram_local,
        dram_remote_ns=dram_remote,
        l3_ns=l3,
        bandwidth_table=table,
    )
    if use_cache:
        _CACHE[key] = data
        _store_cached(arch, seed, bandwidth_points, data)
    return data
