"""Offline calibration: measured latencies and the bandwidth table.

The paper's kernel-module helper *measures* the machine rather than
trusting datasheets: it estimates the maximum bandwidth for each throttle
register value by timing streaming accesses ("saves these values for
later use by the user-mode library", Section 3.1), and the library needs
measured DRAM and L3 latencies for Eqs. (2)-(4).

We reproduce that honestly: calibration runs short measurement workloads
on a *private* simulated machine of the same architecture and derives all
constants from observed timings.  The small systematic errors this
introduces (residual LLC hits in the latency chase, issue overhead in the
streaming kernel) flow into the emulator's accuracy exactly as they do on
metal.

Results are cached per (architecture, seed): calibration is a one-time,
per-machine step, like the paper's helper program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CalibrationError
from repro.hw.arch import ArchSpec
from repro.hw.machine import Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.os.system import SimOS
from repro.sim import Simulator
from repro.units import GIB, MIB


@dataclass(frozen=True)
class CalibrationData:
    """Measured machine constants consumed by the Quartz library."""

    arch_name: str
    dram_local_ns: float
    dram_remote_ns: float
    l3_ns: float
    #: (register value, achieved bytes/ns), ascending in register value.
    bandwidth_table: tuple[tuple[int, float], ...] = field(repr=False)

    @property
    def w_local(self) -> float:
        """W ratio (local DRAM / L3 latency) for Eq. (3)."""
        return self.dram_local_ns / self.l3_ns

    @property
    def w_remote(self) -> float:
        """W ratio for remote-DRAM-backed (virtual NVM) accesses."""
        return self.dram_remote_ns / self.l3_ns

    @property
    def peak_bandwidth(self) -> float:
        """Highest measured bandwidth (bytes/ns)."""
        return max(rate for _, rate in self.bandwidth_table)

    def register_for_bandwidth(self, target_bytes_per_ns: float) -> int:
        """Smallest register value achieving *target* bandwidth.

        Interpolates linearly between measured points (the linearity
        Figure 8 establishes).  A target above the attainable maximum
        returns the unthrottled register.
        """
        if target_bytes_per_ns <= 0:
            raise CalibrationError(f"target bandwidth must be positive: {target_bytes_per_ns}")
        previous_register, previous_rate = None, None
        for register, rate in self.bandwidth_table:
            if rate >= target_bytes_per_ns:
                if previous_register is None or previous_rate is None:
                    return register
                span = rate - previous_rate
                if span <= 0:
                    return register
                fraction = (target_bytes_per_ns - previous_rate) / span
                return min(
                    THROTTLE_REGISTER_MAX,
                    int(round(previous_register + fraction * (register - previous_register))),
                )
            previous_register, previous_rate = register, rate
        return THROTTLE_REGISTER_MAX


def _run_threads(os: SimOS, bodies: list, cpu_node: int = 0) -> float:
    """Run bodies to completion; returns elapsed simulated ns."""
    start = os.sim.now
    for index, body in enumerate(bodies):
        os.create_thread(body, name=f"calibrate{index}", cpu_node=cpu_node)
    os.run_to_completion()
    return os.sim.now - start


def _measure_chase_latency(
    arch: ArchSpec, node: int, footprint_bytes: int, accesses: int, seed: int
) -> float:
    """Pointer-chase latency measurement (the MemLat idea, Section 4.4)."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine)
    durations: dict[str, float] = {}

    def body(ctx):
        region = ctx.malloc(
            footprint_bytes, page_size=PageSize.HUGE_2M, label="calibration-chase"
        )
        start = ctx.now_ns
        yield MemBatch(region, accesses, PatternKind.CHASE)
        durations["elapsed"] = ctx.now_ns - start

    os.create_thread(body, cpu_node=0, mem_node=node)
    os.run_to_completion()
    return durations["elapsed"] / accesses


def _measure_bandwidth(arch: ArchSpec, register: int, seed: int) -> float:
    """Saturating streaming-store bandwidth at one register setting.

    Forks several threads, each streaming through part of a region with
    non-temporal stores — the paper's SSE-streaming helper (Section 3.1).
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch)
    machine.controller(0).program_throttle_register(register, privileged=True)
    os = SimOS(machine)
    stream_threads = 4
    bytes_per_thread = 64 * MIB
    lines = bytes_per_thread // 64

    def body(ctx):
        region = ctx.malloc(bytes_per_thread, label="calibration-stream")
        yield MemBatch(
            region,
            accesses=lines * 8,
            pattern=PatternKind.SEQUENTIAL,
            stride_bytes=8,
            is_store=True,
            non_temporal=True,
        )

    elapsed = _run_threads(os, [body] * stream_threads)
    if elapsed <= 0:
        raise CalibrationError("streaming measurement produced zero duration")
    return stream_threads * bytes_per_thread / elapsed


_CACHE: dict[tuple[str, int], CalibrationData] = {}


def calibrate_arch(
    arch: ArchSpec,
    seed: int = 0,
    bandwidth_points: int = 9,
    use_cache: bool = True,
) -> CalibrationData:
    """Measure one architecture's constants (cached per seed)."""
    key = (arch.name, seed)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    dram_local = _measure_chase_latency(
        arch, node=0, footprint_bytes=4 * GIB, accesses=20_000, seed=seed
    )
    dram_remote = _measure_chase_latency(
        arch, node=1, footprint_bytes=4 * GIB, accesses=20_000, seed=seed + 1
    )
    # L3 latency: a chase footprint far beyond L2 but well inside LLC.
    l3 = _measure_chase_latency(
        arch, node=0, footprint_bytes=8 * MIB, accesses=20_000, seed=seed + 2
    )
    if not dram_local < dram_remote:
        raise CalibrationError(
            f"calibration nonsense: local {dram_local} >= remote {dram_remote}"
        )
    registers = [
        round(index * THROTTLE_REGISTER_MAX / (bandwidth_points - 1))
        for index in range(bandwidth_points)
    ]
    table = tuple(
        (register, _measure_bandwidth(arch, register, seed=seed + 10 + register))
        for register in registers
    )
    data = CalibrationData(
        arch_name=arch.name,
        dram_local_ns=dram_local,
        dram_remote_ns=dram_remote,
        l3_ns=l3,
        bandwidth_table=table,
    )
    if use_cache:
        _CACHE[key] = data
    return data
