"""Persistent-write emulation: pflush and the pcommit extension.

Section 3.1: persistent-memory applications put writes on the critical
path, which the epoch/stall model cannot see (writes are posted and do not
stall).  Quartz therefore provides ``pflush``: a ``clflush`` followed by a
configurable injected delay, pessimistically serialising every persistent
write.

Section 6 sketches the improvement this module also implements: a
``clflushopt``/``pcommit`` model where flushes are posted, their *emulated*
completion times accumulate, and the barrier injects only the delay not
already hidden by program execution — letting independent writes proceed
in parallel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import QuartzError
from repro.hw.machine import Machine
from repro.ops import Flush, FlushOpt, Spin
from repro.os.interpose import ORIGINAL
from repro.quartz.calibration import CalibrationData
from repro.quartz.config import QuartzConfig, WriteModel

if TYPE_CHECKING:
    from repro.os.system import SimOS
    from repro.os.thread import SimThread
    from repro.quartz.tiers import TierDirectory


class PmWriteEmulator:
    """Implements the pflush / pcommit write-delay models."""

    def __init__(
        self,
        machine: Machine,
        config: QuartzConfig,
        calibration: CalibrationData,
        directory: Optional["TierDirectory"] = None,
    ):
        if config.nvm_write_latency_ns is None and directory is None:
            raise QuartzError("write emulation requires nvm_write_latency_ns")
        self.machine = machine
        self.config = config
        self.calibration = calibration
        #: Region -> tier mapping of a multi-tier attachment; when set,
        #: a flushed region pays its *tier's* write latency (the
        #: read/write asymmetry of the N-tier model) with
        #: ``nvm_write_latency_ns`` as the fallback for untiered regions.
        self.directory = directory
        #: Per-thread emulated completion deadlines of posted flushes.
        self._pending_deadlines: dict[int, list[float]] = defaultdict(list)
        self.flushes_emulated = 0
        self.commits_emulated = 0
        #: Optional ``observer(event, thread, op, deadline_ns)`` notified
        #: once per hook invocation (``event`` is ``"pflush"`` or
        #: ``"pcommit"``; the deadline is the posted completion time under
        #: the PCOMMIT model, else ``None``).  The persistence-domain
        #: model uses this to see write-emulation metadata the op stream
        #: alone cannot carry.  Zero-overhead when unset.
        self.observer: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def pflush_hook(self, os: "SimOS", thread: "SimThread", op: Flush):
        """Interposer for pflush calls (op hook, symbol ``pflush``)."""
        if self.config.write_model is WriteModel.PFLUSH:
            result = yield ORIGINAL  # hardware clflush, stall-waited
            extra = self._extra_write_delay_ns(thread, op) * op.lines
            self.flushes_emulated += op.lines
            if self.observer is not None:
                self.observer("pflush", thread, op, None)
            if extra > 0:
                yield Spin(extra, label="quartz-pflush-delay")
            return result
        # PCOMMIT model: post the writeback instead of stalling, and
        # remember when it would complete on real NVM.
        result = yield FlushOpt(
            op.region, op.lines, label="quartz-flushopt", line=op.line
        )
        deadline = (
            self.machine.sim.now + self._write_latency_for(op.region)
        )
        self._pending_deadlines[thread.tid].append(deadline)
        self.flushes_emulated += op.lines
        if self.observer is not None:
            self.observer("pflush", thread, op, deadline)
        return result

    def pcommit_hook(self, os: "SimOS", thread: "SimThread", op):
        """Interposer for pcommit barriers (op hook, symbol ``pcommit``)."""
        result = yield ORIGINAL  # hardware drain of posted flushes
        deadlines = self._pending_deadlines.pop(thread.tid, [])
        self.commits_emulated += 1
        if self.observer is not None:
            self.observer("pcommit", thread, op, None)
        if deadlines:
            # Only the portion of emulated write time not already covered
            # by program progress is injected (Section 6's discounting).
            remaining = max(deadlines) - self.machine.sim.now
            if remaining > 0:
                yield Spin(remaining, label="quartz-pcommit-delay")
        return result

    def pending_flush_count(self, thread: "SimThread") -> int:
        """Posted-but-uncommitted flushes of one thread."""
        return len(self._pending_deadlines.get(thread.tid, ()))

    def total_pending_flushes(self) -> int:
        """Posted-but-uncommitted flushes across every live thread."""
        return sum(len(deadlines) for deadlines in self._pending_deadlines.values())

    def discard_thread(self, thread: "SimThread") -> None:
        """Drop a finished thread's posted-flush deadlines.

        Registered on the OS thread-exit callback when Quartz attaches:
        without it a reused tid would inherit a dead thread's pending
        writes and its first pcommit would stall on deadlines it never
        posted.
        """
        self._pending_deadlines.pop(thread.tid, None)

    # ------------------------------------------------------------------
    def _write_latency_for(self, region) -> float:
        """Target write latency of one region (its tier's, or the global)."""
        if self.directory is not None:
            tier = self.directory.tier_of(region.region_id)
            if tier is not None:
                return self.directory.tiers[tier].write_latency_ns
        if self.config.nvm_write_latency_ns is None:
            # Untiered region under a tier-only attachment: no write
            # delay beyond the hardware writeback.
            return 0.0
        return self.config.nvm_write_latency_ns

    def _extra_write_delay_ns(self, thread: "SimThread", op: Flush) -> float:
        """Per-line delay on top of the hardware writeback."""
        hardware_ns = self.machine.dram_latency_ns(
            thread.core.socket, op.region.node
        )
        return max(0.0, self._write_latency_for(op.region) - hardware_ns)
