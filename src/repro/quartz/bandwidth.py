"""The bandwidth emulation model (Section 2.1).

NVM bandwidth is emulated entirely in hardware: the kernel module programs
the thermal-control registers so the memory controller services at the
target rate.  The register value for a requested bandwidth comes from the
calibration table (register -> measured bandwidth), inverting the linear
relationship Figure 8 validates.

In PM mode every node is throttled (all memory *is* NVM); in two-memory
mode only the virtual-NVM node is throttled, leaving local DRAM at full
speed (Section 3.3).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QuartzError
from repro.quartz.calibration import CalibrationData
from repro.quartz.config import EmulationMode, QuartzConfig
from repro.quartz.kernel_module import QuartzKernelModule


class BandwidthThrottler:
    """Programs throttle registers to hit a target NVM bandwidth."""

    def __init__(
        self,
        kernel_module: QuartzKernelModule,
        calibration: CalibrationData,
        config: QuartzConfig,
        nvm_node: int,
    ):
        self.kernel_module = kernel_module
        self.calibration = calibration
        self.config = config
        self.nvm_node = nvm_node
        self.applied_register: Optional[int] = None
        #: Tier name -> register value each tier's bandwidth target maps
        #: to (multi-tier mode).  The sibling node only has one physical
        #: throttle register, so the *tightest* (lowest-bandwidth) tier's
        #: register is the one actually programmed; the rest are recorded
        #: so exports can show what each tier asked for.
        self.tier_registers: dict[str, int] = {}

    def apply(self) -> None:
        """Program the registers for the configured target bandwidth."""
        target = self.config.nvm_bandwidth_gbps
        if self.config.mode is EmulationMode.MULTI_TIER and self.config.tiers:
            tier_target = self._tightest_tier_bandwidth()
            if tier_target is not None:
                target = (
                    tier_target if target is None else min(target, tier_target)
                )
        if target is not None:
            if target > self.calibration.peak_bandwidth:
                raise QuartzError(
                    f"target bandwidth {target} GB/s exceeds attainable "
                    f"{self.calibration.peak_bandwidth:.1f} GB/s"
                )
            register = self.calibration.register_for_bandwidth(target)
            for node in self._throttled_nodes():
                self.kernel_module.set_throttle_register(node, register)
            self.applied_register = register
        read_target = self.config.nvm_read_bandwidth_gbps
        write_target = self.config.nvm_write_bandwidth_gbps
        if read_target is not None and write_target is not None:
            # The asymmetric extension (Section 2.1): separate read/write
            # registers; raises UnsupportedFeatureError on parts without
            # them, exactly the paper's footnote-2 situation.
            read_register = self.calibration.register_for_bandwidth(read_target)
            write_register = self.calibration.register_for_bandwidth(write_target)
            for node in self._throttled_nodes():
                self.kernel_module.set_rw_throttle_registers(
                    node, read_register, write_register
                )
            self.applied_register = self.applied_register or max(
                read_register, write_register
            )

    def reset(self) -> None:
        """Restore full bandwidth on every node we touched."""
        if self.applied_register is None:
            return
        for node in self._throttled_nodes():
            self.kernel_module.reset_throttle(node)
        self.applied_register = None

    def _tightest_tier_bandwidth(self) -> Optional[float]:
        """Lowest per-tier bandwidth target; fills ``tier_registers``."""
        tightest: Optional[float] = None
        self.tier_registers = {}
        for tier in self.config.tiers or ():
            if tier.bandwidth_gbps is None:
                continue
            if tier.bandwidth_gbps > self.calibration.peak_bandwidth:
                raise QuartzError(
                    f"tier '{tier.name}' bandwidth {tier.bandwidth_gbps} "
                    f"GB/s exceeds attainable "
                    f"{self.calibration.peak_bandwidth:.1f} GB/s"
                )
            self.tier_registers[tier.name] = (
                self.calibration.register_for_bandwidth(tier.bandwidth_gbps)
            )
            if tightest is None or tier.bandwidth_gbps < tightest:
                tightest = tier.bandwidth_gbps
        return tightest

    def _throttled_nodes(self) -> list[int]:
        if self.config.mode in (
            EmulationMode.TWO_MEMORY,
            EmulationMode.MULTI_TIER,
        ):
            return [self.nvm_node]
        return list(range(len(self.kernel_module.machine.controllers)))
