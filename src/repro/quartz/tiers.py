"""The N-tier hybrid-memory model: tier specs, placement, accounting.

The paper's two-memory mode (Section 3.3) is one point in a larger
design space: "Emulating Hybrid Memory on NUMA Hardware" models DRAM +
NVM tiers with OS paging/migration, and Koshiba et al. model independent
read vs. write NVM latencies.  This module generalises the machinery so
a machine hosts an ordered list of :class:`MemoryTier` specs — tier 0 is
always the local DRAM, every further tier is a progressively slower
memory physically backed by the sibling socket's DRAM (the same virtual
topology trick; the *emulated* latency differs per tier).

Three cooperating pieces:

* :class:`TierDirectory` — the page table of the tier model: which
  pmalloc'd region lives in which tier, per-tier occupancy against the
  declared capacities, per-region access counts, and migrations.
* Placement policies (:class:`StaticPlacement`,
  :class:`RoundRobinPlacement`, :class:`HotPromotePlacement`) — decide
  which tier a new allocation lands in and, for the promotion policy,
  when a hot region migrates to a faster tier.  Migration is an instant
  remap in the directory: the emulator charges subsequent accesses at
  the new tier's latency, which is exactly how a page move looks from
  the analytic model's viewpoint.
* :class:`TierAccountant` — a dispatch observer counting per-thread,
  per-tier, per-direction (load/store) references.  The epoch engine
  snapshots these like performance counters and apportions the measured
  remote LLC misses across the NVM tiers in proportion.

Everything here is deterministic and pure-Python: placement decisions
depend only on the allocation order and the declared policy, so exports
stay byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import QuartzError
from repro.ops import MemBatch

if TYPE_CHECKING:
    from repro.hw.topology import MemoryRegion
    from repro.os.thread import SimThread

#: Placement policy names accepted by ``QuartzConfig.placement_policy``.
PLACEMENT_POLICIES = ("static", "round-robin", "hot-promote")


@dataclass(frozen=True)
class MemoryTier:
    """One memory tier: independent read/write latency, bandwidth, size.

    Tier 0 of a machine's tier list is the local DRAM (its latencies are
    informational — tier-0 accesses are never delayed); tiers >= 1 are
    emulated memories whose targets must be reachable by slowing the
    backing DRAM down.  ``bandwidth_gbps`` programs the tier's throttle
    register (None = unthrottled); ``capacity_bytes`` bounds placement
    (None = unbounded).
    """

    name: str
    read_latency_ns: float
    write_latency_ns: float
    bandwidth_gbps: Optional[float] = None
    capacity_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QuartzError("memory tier needs a name")
        if self.read_latency_ns <= 0:
            raise QuartzError(
                f"tier {self.name!r}: read latency must be positive: "
                f"{self.read_latency_ns}"
            )
        if self.write_latency_ns <= 0:
            raise QuartzError(
                f"tier {self.name!r}: write latency must be positive: "
                f"{self.write_latency_ns}"
            )
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise QuartzError(
                f"tier {self.name!r}: bandwidth must be positive: "
                f"{self.bandwidth_gbps}"
            )
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise QuartzError(
                f"tier {self.name!r}: capacity must be positive: "
                f"{self.capacity_bytes}"
            )


def validate_tier_list(tiers: Sequence[MemoryTier]) -> None:
    """Shared tier-list validation (config and topology both call it)."""
    if len(tiers) < 2:
        raise QuartzError(
            f"multi-tier emulation needs at least 2 tiers (DRAM + one "
            f"emulated memory), got {len(tiers)}"
        )
    names = [tier.name for tier in tiers]
    if len(set(names)) != len(names):
        raise QuartzError(f"tier names must be unique: {names}")


@dataclass
class TierDirectory:
    """Region -> tier mapping plus occupancy and hotness bookkeeping."""

    tiers: tuple[MemoryTier, ...]
    #: region_id -> tier index.
    _tier_of: dict = field(default_factory=dict)
    #: region_id -> size (kept so frees/migrations adjust occupancy).
    _size_of: dict = field(default_factory=dict)
    #: region_id -> cumulative accesses (hot-page promotion input).
    _accesses: dict = field(default_factory=dict)
    #: tier index -> currently allocated bytes.
    allocated_bytes: dict = field(default_factory=dict)
    #: tier index -> total placements (stats surface).
    placements: dict = field(default_factory=dict)
    migrations: int = 0
    migrated_bytes: int = 0

    @property
    def nvm_tier_indices(self) -> tuple[int, ...]:
        """Indices of the emulated (non-DRAM) tiers."""
        return tuple(range(1, len(self.tiers)))

    def fits(self, tier_index: int, size_bytes: int) -> bool:
        """Whether *size_bytes* more fit under the tier's capacity."""
        capacity = self.tiers[tier_index].capacity_bytes
        if capacity is None:
            return True
        return self.allocated_bytes.get(tier_index, 0) + size_bytes <= capacity

    def register(self, region: "MemoryRegion", tier_index: int) -> None:
        """Record a fresh allocation in *tier_index*."""
        if not 1 <= tier_index < len(self.tiers):
            raise QuartzError(
                f"placement chose tier {tier_index}, valid emulated tiers "
                f"are {self.nvm_tier_indices}"
            )
        self._tier_of[region.region_id] = tier_index
        self._size_of[region.region_id] = region.size_bytes
        self.allocated_bytes[tier_index] = (
            self.allocated_bytes.get(tier_index, 0) + region.size_bytes
        )
        self.placements[tier_index] = self.placements.get(tier_index, 0) + 1

    def unregister(self, region: "MemoryRegion") -> None:
        """Drop a freed region from the directory."""
        tier_index = self._tier_of.pop(region.region_id, None)
        if tier_index is None:
            return
        size = self._size_of.pop(region.region_id, 0)
        self.allocated_bytes[tier_index] = max(
            0, self.allocated_bytes.get(tier_index, 0) - size
        )
        self._accesses.pop(region.region_id, None)

    def tier_of(self, region_id: int) -> Optional[int]:
        """Tier index of a registered region (None if not tiered)."""
        return self._tier_of.get(region_id)

    def record_access(self, region_id: int, count: int) -> int:
        """Bump a region's access count; returns the new total."""
        total = self._accesses.get(region_id, 0) + count
        self._accesses[region_id] = total
        return total

    def migrate(self, region_id: int, to_tier: int) -> None:
        """Instant remap of a region to another tier (a page move)."""
        from_tier = self._tier_of.get(region_id)
        if from_tier is None or from_tier == to_tier:
            return
        if not 1 <= to_tier < len(self.tiers):
            raise QuartzError(f"cannot migrate to tier {to_tier}")
        size = self._size_of.get(region_id, 0)
        self.allocated_bytes[from_tier] = max(
            0, self.allocated_bytes.get(from_tier, 0) - size
        )
        self.allocated_bytes[to_tier] = (
            self.allocated_bytes.get(to_tier, 0) + size
        )
        self._tier_of[region_id] = to_tier
        self.migrations += 1
        self.migrated_bytes += size

    def report(self) -> dict:
        """JSON-safe placement/migration summary (stats surface)."""
        return {
            "placements": {
                str(tier): count for tier, count in sorted(self.placements.items())
            },
            "migrations": self.migrations,
            "migrated_bytes": self.migrated_bytes,
        }


class PlacementPolicy:
    """Decides where allocations land and when regions migrate."""

    name = "abstract"

    def place(self, size_bytes: int, directory: TierDirectory) -> int:
        """Tier index (>= 1) for a new allocation of *size_bytes*."""
        raise NotImplementedError

    def maybe_promote(
        self, region_id: int, total_accesses: int, directory: TierDirectory
    ) -> Optional[int]:
        """Target tier for a hot region, or None to leave it in place."""
        return None

    @staticmethod
    def _first_with_room(
        preferred: int, size_bytes: int, directory: TierDirectory
    ) -> int:
        """*preferred* if it has capacity, else the next slower tier with
        room; falls back to the slowest tier when everything is full
        (capacity pressure degrades placement, it never fails an
        allocation — mirroring how the OS overcommits the slow tier)."""
        candidates = [
            tier for tier in directory.nvm_tier_indices if tier >= preferred
        ] + [tier for tier in directory.nvm_tier_indices if tier < preferred]
        for tier in candidates:
            if directory.fits(tier, size_bytes):
                return tier
        return directory.nvm_tier_indices[-1]


class StaticPlacement(PlacementPolicy):
    """Fixed placement: a declared tier order, cycled per allocation.

    With no order every allocation lands in the slowest tier — the
    pessimistic default matching "new data is cold".  An explicit order
    such as ``(1, 2)`` pins the i-th pmalloc to a known tier, which is
    what the tier-sweep closed form relies on.
    """

    name = "static"

    def __init__(self, order: Optional[tuple[int, ...]] = None):
        self.order = tuple(order) if order else None
        self._next = 0

    def place(self, size_bytes: int, directory: TierDirectory) -> int:
        if self.order is None:
            preferred = directory.nvm_tier_indices[-1]
        else:
            preferred = self.order[self._next % len(self.order)]
            self._next += 1
        return self._first_with_room(preferred, size_bytes, directory)


class RoundRobinPlacement(PlacementPolicy):
    """Spread allocations across the emulated tiers in rotation."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, size_bytes: int, directory: TierDirectory) -> int:
        indices = directory.nvm_tier_indices
        preferred = indices[self._next % len(indices)]
        self._next += 1
        return self._first_with_room(preferred, size_bytes, directory)


class HotPromotePlacement(StaticPlacement):
    """Static placement plus hot-page promotion.

    Regions start where :class:`StaticPlacement` puts them (the slowest
    tier by default); once a region's cumulative access count crosses
    ``threshold_accesses`` it is promoted one tier toward the fastest
    emulated tier, capacity permitting.  Promotion is an instant remap
    (see :meth:`TierDirectory.migrate`).
    """

    name = "hot-promote"

    def __init__(
        self,
        threshold_accesses: int,
        order: Optional[tuple[int, ...]] = None,
    ):
        super().__init__(order)
        if threshold_accesses <= 0:
            raise QuartzError(
                f"promotion threshold must be positive: {threshold_accesses}"
            )
        self.threshold_accesses = threshold_accesses

    def maybe_promote(
        self, region_id: int, total_accesses: int, directory: TierDirectory
    ) -> Optional[int]:
        if total_accesses < self.threshold_accesses:
            return None
        current = directory.tier_of(region_id)
        if current is None or current <= 1:
            return None  # already in the fastest emulated tier
        target = current - 1
        size = directory._size_of.get(region_id, 0)
        if not directory.fits(target, size):
            return None
        return target


def build_policy(
    policy: str,
    order: Optional[tuple[int, ...]] = None,
    promote_threshold_accesses: Optional[int] = None,
) -> PlacementPolicy:
    """Construct a placement policy from its picklable config fields."""
    if policy == "static":
        return StaticPlacement(order)
    if policy == "round-robin":
        return RoundRobinPlacement()
    if policy == "hot-promote":
        if promote_threshold_accesses is None:
            raise QuartzError(
                "hot-promote placement needs promote_threshold_accesses"
            )
        return HotPromotePlacement(promote_threshold_accesses, order)
    raise QuartzError(
        f"unknown placement policy: {policy!r} "
        f"(expected one of {PLACEMENT_POLICIES})"
    )


class TierAccountant:
    """Dispatch observer counting per-thread, per-tier references.

    Sees every executed op exactly once (the OS dispatch-observer seam),
    filters memory batches against tiered regions, and accumulates
    cumulative ``(reads, writes)`` per tier per thread — the software
    analogue of a per-tier performance counter.  The epoch engine
    snapshots these at epoch open and differences them at close, exactly
    like the hardware counter base.

    Also the hotness feed: every counted batch bumps the region's access
    total and asks the policy whether the region should migrate.  An
    existing dispatch observer (e.g. the persistence domain's) is
    chained, never displaced.
    """

    def __init__(
        self,
        directory: TierDirectory,
        policy: PlacementPolicy,
        previous_observer=None,
    ):
        self.directory = directory
        self.policy = policy
        self.previous_observer = previous_observer
        #: tid -> per-tier [reads, writes] accumulators.
        self._counts: dict[int, list[list[float]]] = {}

    def __call__(self, thread: "SimThread", op) -> None:
        if self.previous_observer is not None:
            self.previous_observer(thread, op)
        if not isinstance(op, MemBatch):
            return
        tier = self.directory.tier_of(op.region.region_id)
        if tier is None:
            return
        counts = self._counts.get(thread.tid)
        if counts is None:
            counts = [[0.0, 0.0] for _ in self.directory.tiers]
            self._counts[thread.tid] = counts
        counts[tier][1 if op.is_store else 0] += op.accesses
        total = self.directory.record_access(op.region.region_id, op.accesses)
        target = self.policy.maybe_promote(
            op.region.region_id, total, self.directory
        )
        if target is not None:
            self.directory.migrate(op.region.region_id, target)

    def snapshot(self, tid: int) -> list[tuple[float, float]]:
        """Cumulative per-tier ``(reads, writes)`` of one thread."""
        counts = self._counts.get(tid)
        if counts is None:
            return [(0.0, 0.0) for _ in self.directory.tiers]
        return [(reads, writes) for reads, writes in counts]
