"""Counter access backends: direct ``rdpmc`` vs. trapping frameworks.

Section 3.2: reading all required counters costs ~2000 cycles with direct
``rdpmc`` (half of the ~4000-cycle epoch processing) but ~30,000 cycles
through PAPI-style frameworks that virtualise counters and trap into the
kernel per access — 8x more, enough to make the epoch overhead impossible
to amortise.  Both backends read the same simulated PMC file; only the
cycle cost (charged by the epoch engine as compute) differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuartzError
from repro.hw.arch import CounterEventSet
from repro.hw.pmc import PmcFile


@dataclass(frozen=True)
class CounterBackend:
    """A way of reading performance counters and its cycle cost."""

    name: str
    #: Cycles to read one counter.
    cost_per_event_cycles: float
    #: Fixed per-read-batch cycles (framework entry/exit).
    fixed_cost_cycles: float
    #: True if user-mode reads are possible (rdpmc); PAPI traps instead.
    user_mode: bool

    def read_all(
        self, pmc: PmcFile, events: CounterEventSet
    ) -> tuple[dict[str, float], float]:
        """Read every Table 1 event; returns (values, cost_cycles)."""
        names = events.all_events()
        values = {name: pmc.read(name) for name in names}
        cost = self.fixed_cost_cycles + self.cost_per_event_cycles * len(names)
        return values, cost

    def read_values(
        self, pmc: PmcFile, names: tuple[str, ...]
    ) -> tuple[list[float], float]:
        """Batched read: values as a list aligned with *names*.

        The epoch engine's hot path uses this with a cached name tuple and
        precomputed event indices, so each close builds one list instead of
        a dict.  Reads still go through :meth:`PmcFile.read` one event at a
        time — that per-event call is the fault layer's interception seam.
        """
        read = pmc.read
        values = [read(name) for name in names]
        cost = self.fixed_cost_cycles + self.cost_per_event_cycles * len(names)
        return values, cost


#: Direct rdpmc reads from user mode (the paper's choice).
RDPMC_BACKEND = CounterBackend(
    name="rdpmc",
    cost_per_event_cycles=450.0,
    fixed_cost_cycles=200.0,
    user_mode=True,
)

#: PAPI-style virtualised counters: kernel trap per access (Section 3.2:
#: ~30,000 cycles for all required counters, ~8x rdpmc).
PAPI_BACKEND = CounterBackend(
    name="papi",
    cost_per_event_cycles=7_000.0,
    fixed_cost_cycles=2_000.0,
    user_mode=False,
)


def backend_by_name(name: str) -> CounterBackend:
    """Look up a backend by configuration name."""
    if name == "rdpmc":
        return RDPMC_BACKEND
    if name == "papi":
        return PAPI_BACKEND
    raise QuartzError(f"unknown counter backend: {name!r}")
