"""Epoch tracing: a structured record of every epoch the emulator closes.

Section 3.2 describes Quartz's tuning statistics and knobs; this module
is the reproduction's power tool behind them.  Attach an
:class:`EpochTrace` to a :class:`~repro.quartz.emulator.Quartz` instance
and every epoch close is recorded — when, why (monitor / sync / exit),
how long the epoch was, how much delay the model computed and how much
was actually injected.  The summary answers the practical questions:
*is my epoch size right?  are delays propagating through sync points?
is overhead amortising?*
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import QuartzError
from repro.quartz.stats import EpochTrigger
from repro.validation.metrics import summarize

if TYPE_CHECKING:
    from repro.quartz.emulator import Quartz


@dataclass(frozen=True)
class EpochRecord:
    """One closed epoch."""

    time_ns: float
    tid: int
    thread_name: str
    trigger: EpochTrigger
    epoch_length_ns: float
    delay_computed_ns: float
    delay_injected_ns: float


@dataclass
class EpochTrace:
    """A growable trace of epoch closes, with summary analytics."""

    records: Sequence[EpochRecord] = field(default_factory=list)
    #: Cap to keep long runs bounded; oldest records are dropped.
    max_records: int = 1_000_000

    def __post_init__(self) -> None:
        # A bounded deque evicts from the front in O(1); the old list
        # implementation paid O(n) per record once the cap was reached.
        self.records = deque(self.records, maxlen=self.max_records)

    def record(self, record: EpochRecord) -> None:
        """Append one record (drops the oldest past ``max_records``)."""
        self.records.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_trigger(self, trigger: EpochTrigger) -> list[EpochRecord]:
        """All records closed by one trigger."""
        return [r for r in self.records if r.trigger is trigger]

    def by_thread(self, tid: int) -> list[EpochRecord]:
        """All records of one thread."""
        return [r for r in self.records if r.tid == tid]

    @property
    def total_injected_ns(self) -> float:
        """Sum of injected delays across the trace."""
        return sum(r.delay_injected_ns for r in self.records)

    def epoch_length_stats(self):
        """Trial statistics over epoch lengths."""
        if not self.records:
            raise QuartzError("empty trace")
        return summarize([r.epoch_length_ns for r in self.records])

    def injection_ratio(self) -> float:
        """Injected / computed delay (1.0 = no amortisation shaving)."""
        computed = sum(r.delay_computed_ns for r in self.records)
        if computed <= 0:
            return 1.0
        return self.total_injected_ns / computed

    def summary(self) -> str:
        """A human-readable multi-line report."""
        if not self.records:
            return "epoch trace: empty"
        lengths = self.epoch_length_stats()
        lines = [
            f"epoch trace: {len(self.records)} epochs over "
            f"{len({r.tid for r in self.records})} thread(s)",
            (
                f"  triggers: monitor={len(self.by_trigger(EpochTrigger.MONITOR))}"
                f" sync={len(self.by_trigger(EpochTrigger.SYNC))}"
                f" exit={len(self.by_trigger(EpochTrigger.EXIT))}"
            ),
            (
                f"  epoch length us: mean={lengths.mean / 1000.0:.1f}"
                f" min={lengths.minimum / 1000.0:.1f}"
                f" max={lengths.maximum / 1000.0:.1f}"
            ),
            (
                f"  delay injected: {self.total_injected_ns / 1e6:.3f} ms"
                f" ({100.0 * self.injection_ratio():.1f}% of computed)"
            ),
        ]
        return "\n".join(lines)


def attach_trace(quartz: "Quartz", max_records: int = 1_000_000) -> EpochTrace:
    """Instrument an attached Quartz with an epoch trace.

    Wraps the engine's close paths; the emulator's behaviour is unchanged
    (tracing is free in simulated time).  Returns the live trace.
    """
    engine = quartz._engine
    if engine is None:
        raise QuartzError("attach the emulator before attaching a trace")
    trace = EpochTrace(max_records=max_records)
    original_measure = engine._close_measure

    def traced_measure(thread, state, trigger):
        epoch_length = engine.machine.sim.now - state.start_ns
        injected_before = quartz.stats.thread(thread.tid).delay_injected_ns
        delay_ns, cost = original_measure(thread, state, trigger)
        trace.record(
            EpochRecord(
                time_ns=engine.machine.sim.now,
                tid=thread.tid,
                thread_name=thread.name,
                trigger=trigger,
                epoch_length_ns=epoch_length,
                delay_computed_ns=delay_ns,
                # Injection happens after amortisation; resolved lazily
                # below via the injected-delta of the stats record.
                delay_injected_ns=max(
                    0.0,
                    delay_ns
                    - max(0.0, state.overhead_pool_ns),
                ),
            )
        )
        del injected_before
        return delay_ns, cost

    engine._close_measure = traced_measure
    return trace
