"""Epoch tracing: a structured record of every epoch the emulator closes.

Section 3.2 describes Quartz's tuning statistics and knobs; this module
is the reproduction's power tool behind them.  Attach an
:class:`EpochTrace` to a :class:`~repro.quartz.emulator.Quartz` instance
and every epoch close is recorded — when, why (monitor / sync / exit),
how long the epoch was, how much delay the model computed and how much
was actually injected.  The summary answers the practical questions:
*is my epoch size right?  are delays propagating through sync points?
is overhead amortising?*

The in-memory trace is capped (oldest records drop past
``max_records``); for full-history inspection of million-epoch runs,
attach a :class:`JsonlTraceWriter` **sink** — every record then also
streams to a JSONL file as it is produced, bypassing the cap entirely.
:func:`read_trace_jsonl` reloads such a file and the
``quartz-repro trace summarize`` CLI subcommand reprints the §3.2-style
summary from it.

The JSONL layout is line-per-object, each tagged with a ``kind``:

* ``header`` — schema name/version, written once at the top;
* ``run`` — a marker opening one emulated run (index, workload, arch,
  mode, seed), written by the experiment runner;
* ``epoch`` — one :class:`EpochRecord`;
* ``stats`` — a :class:`~repro.quartz.stats.QuartzStats` snapshot,
  written when a run completes.

Unknown kinds are ignored on read (forward compatibility).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from repro.errors import QuartzError
from repro.quartz.stats import EpochTrigger, QuartzStats
from repro.validation.metrics import summarize

if TYPE_CHECKING:
    from repro.quartz.emulator import Quartz

#: Schema identity of the JSONL trace stream.
TRACE_SCHEMA = "quartz-repro/epoch-trace"
#: Bump when the line layout or record fields change.
TRACE_SCHEMA_VERSION = 1

#: Default in-memory record cap (see :class:`EpochTrace`).
DEFAULT_MAX_RECORDS = 1_000_000


@dataclass(frozen=True)
class EpochRecord:
    """One closed epoch."""

    time_ns: float
    tid: int
    thread_name: str
    trigger: EpochTrigger
    epoch_length_ns: float
    delay_computed_ns: float
    delay_injected_ns: float

    def to_dict(self) -> dict:
        """JSON-safe form (trigger as its string value)."""
        return {
            "time_ns": self.time_ns,
            "tid": self.tid,
            "thread_name": self.thread_name,
            "trigger": self.trigger.value,
            "epoch_length_ns": self.epoch_length_ns,
            "delay_computed_ns": self.delay_computed_ns,
            "delay_injected_ns": self.delay_injected_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EpochRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        try:
            return cls(
                time_ns=float(payload["time_ns"]),
                tid=int(payload["tid"]),
                thread_name=str(payload["thread_name"]),
                trigger=EpochTrigger(payload["trigger"]),
                epoch_length_ns=float(payload["epoch_length_ns"]),
                delay_computed_ns=float(payload["delay_computed_ns"]),
                delay_injected_ns=float(payload["delay_injected_ns"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise QuartzError(f"malformed epoch record: {error}")


class JsonlTraceWriter:
    """Streams trace objects to a JSONL file, one JSON object per line.

    Opening writes the ``header`` line immediately, so even a run that
    closes no epochs leaves a parseable file.  ``close()`` is idempotent;
    the writer is also a context manager.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.records_written = 0
        self.runs_written = 0
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "kind": "header",
                "schema": TRACE_SCHEMA,
                "schema_version": TRACE_SCHEMA_VERSION,
            }
        )

    def _write_line(self, payload: dict) -> None:
        if self._handle is None:
            raise QuartzError(f"trace writer already closed: {self.path}")
        self._handle.write(json.dumps(payload, sort_keys=True))
        self._handle.write("\n")

    def begin_run(self, **fields: Any) -> None:
        """Open one run section (index, workload, arch, mode, seed, ...)."""
        self.runs_written += 1
        self._write_line({"kind": "run", **fields})

    def write_record(self, record: EpochRecord) -> None:
        """Append one epoch record."""
        self.records_written += 1
        self._write_line({"kind": "epoch", **record.to_dict()})

    def write_stats(self, stats: QuartzStats) -> None:
        """Append a run-final emulator statistics snapshot."""
        self._write_line({"kind": "stats", **stats.to_dict()})

    def close(self) -> None:
        """Flush and close the file (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class EpochTrace:
    """A growable trace of epoch closes, with summary analytics."""

    records: Sequence[EpochRecord] = field(default_factory=list)
    #: Cap to keep long runs bounded; oldest records are dropped.
    max_records: int = DEFAULT_MAX_RECORDS
    #: Optional streaming sink: every recorded epoch is also written to
    #: this :class:`JsonlTraceWriter`, uncapped.
    sink: Optional[JsonlTraceWriter] = None

    def __post_init__(self) -> None:
        # A bounded deque evicts from the front in O(1); the old list
        # implementation paid O(n) per record once the cap was reached.
        self.records = deque(self.records, maxlen=self.max_records)

    def record(self, record: EpochRecord) -> None:
        """Append one record (drops the oldest past ``max_records``).

        With a ``sink`` attached the record additionally streams to the
        JSONL file, so the on-disk history never loses anything to the
        in-memory cap.
        """
        self.records.append(record)
        if self.sink is not None:
            self.sink.write_record(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_trigger(self, trigger: EpochTrigger) -> list[EpochRecord]:
        """All records closed by one trigger."""
        return [r for r in self.records if r.trigger is trigger]

    def by_thread(self, tid: int) -> list[EpochRecord]:
        """All records of one thread."""
        return [r for r in self.records if r.tid == tid]

    @property
    def total_injected_ns(self) -> float:
        """Sum of injected delays across the trace."""
        return sum(r.delay_injected_ns for r in self.records)

    def epoch_length_stats(self):
        """Trial statistics over epoch lengths."""
        if not self.records:
            raise QuartzError("empty trace")
        return summarize([r.epoch_length_ns for r in self.records])

    def injection_ratio(self) -> float:
        """Injected / computed delay (1.0 = no amortisation shaving)."""
        computed = sum(r.delay_computed_ns for r in self.records)
        if computed <= 0:
            return 1.0
        return self.total_injected_ns / computed

    def summary(self) -> str:
        """A human-readable multi-line report."""
        if not self.records:
            return "epoch trace: empty"
        lengths = self.epoch_length_stats()
        lines = [
            f"epoch trace: {len(self.records)} epochs over "
            f"{len({r.tid for r in self.records})} thread(s)",
            (
                f"  triggers: monitor={len(self.by_trigger(EpochTrigger.MONITOR))}"
                f" sync={len(self.by_trigger(EpochTrigger.SYNC))}"
                f" exit={len(self.by_trigger(EpochTrigger.EXIT))}"
            ),
            (
                f"  epoch length us: mean={lengths.mean / 1000.0:.1f}"
                f" min={lengths.minimum / 1000.0:.1f}"
                f" max={lengths.maximum / 1000.0:.1f}"
            ),
            (
                f"  delay injected: {self.total_injected_ns / 1e6:.3f} ms"
                f" ({100.0 * self.injection_ratio():.1f}% of computed)"
            ),
        ]
        return "\n".join(lines)


@dataclass
class TraceFile:
    """A reloaded JSONL trace: records plus run/stats markers."""

    header: dict
    trace: EpochTrace
    runs: list[dict] = field(default_factory=list)
    stats: list[dict] = field(default_factory=list)


def read_trace_jsonl(
    path: Union[str, Path], max_records: Optional[int] = None
) -> TraceFile:
    """Reload a JSONL epoch trace written by :class:`JsonlTraceWriter`.

    ``max_records`` caps the rebuilt in-memory trace exactly like a live
    :class:`EpochTrace` (default: the same 1M-record cap), so the
    summary of a reloaded capped run matches the in-memory one.  Lines
    with unknown ``kind`` values are skipped; a missing or incompatible
    header raises :class:`~repro.errors.QuartzError`.
    """
    path = Path(path)
    cap = DEFAULT_MAX_RECORDS if max_records is None else max_records
    header: Optional[dict] = None
    records: deque = deque(maxlen=cap)
    runs: list[dict] = []
    stats: list[dict] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise QuartzError(f"cannot open trace file: {error}")
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise QuartzError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                )
            kind = payload.get("kind")
            if header is None:
                if kind != "header" or payload.get("schema") != TRACE_SCHEMA:
                    raise QuartzError(
                        f"{path}: not a {TRACE_SCHEMA} JSONL file"
                    )
                if payload.get("schema_version") != TRACE_SCHEMA_VERSION:
                    raise QuartzError(
                        f"{path}: unsupported trace schema version "
                        f"{payload.get('schema_version')!r} "
                        f"(supported: {TRACE_SCHEMA_VERSION})"
                    )
                header = payload
                continue
            if kind == "epoch":
                records.append(EpochRecord.from_dict(payload))
            elif kind == "run":
                runs.append(payload)
            elif kind == "stats":
                stats.append(payload)
            # unknown kinds: skip (forward compatibility)
    if header is None:
        raise QuartzError(f"{path}: empty trace file (no header line)")
    return TraceFile(
        header=header,
        trace=EpochTrace(records=records, max_records=cap),
        runs=runs,
        stats=stats,
    )


def summarize_trace_jsonl(
    path: Union[str, Path], max_records: Optional[int] = None
) -> str:
    """The §3.2-style summary of a JSONL trace file.

    The first lines are exactly :meth:`EpochTrace.summary` over the
    reloaded records; run markers and per-run stats snapshots, when
    present, append amortisation feedback per emulated run.
    """
    document = read_trace_jsonl(path, max_records=max_records)
    lines = [document.trace.summary()]
    if document.runs:
        lines.append(f"  runs traced: {len(document.runs)}")
    for index, stats in enumerate(document.stats):
        run = document.runs[index] if index < len(document.runs) else {}
        label = run.get("label") or (
            f"{run.get('workload', '?')}/{run.get('arch', '?')}"
            f"/seed={run.get('seed', '?')}"
        )
        amortized = "yes" if stats.get("fully_amortized") else "NO"
        lines.append(
            f"  run {run.get('index', index)} ({label}): "
            f"{stats.get('epochs_total', 0)} epochs, "
            f"{stats.get('delay_injected_ns', 0.0) / 1e6:.3f} ms injected, "
            f"overhead fully amortized: {amortized}"
        )
    return "\n".join(lines)


def attach_trace(
    quartz: "Quartz",
    max_records: int = DEFAULT_MAX_RECORDS,
    sink: Optional[JsonlTraceWriter] = None,
) -> EpochTrace:
    """Instrument an attached Quartz with an epoch trace.

    Wraps the engine's close paths; the emulator's behaviour is unchanged
    (tracing is free in simulated time).  Returns the live trace.  With
    ``sink`` set, every record also streams to the JSONL writer.
    """
    engine = quartz._engine
    if engine is None:
        raise QuartzError("attach the emulator before attaching a trace")
    trace = EpochTrace(max_records=max_records, sink=sink)
    original_measure = engine._close_measure

    def traced_measure(thread, state, trigger):
        epoch_length = engine.machine.sim.now - state.start_ns
        injected_before = quartz.stats.thread(thread.tid).delay_injected_ns
        delay_ns, cost = original_measure(thread, state, trigger)
        trace.record(
            EpochRecord(
                time_ns=engine.machine.sim.now,
                tid=thread.tid,
                thread_name=thread.name,
                trigger=trigger,
                epoch_length_ns=epoch_length,
                delay_computed_ns=delay_ns,
                # Injection happens after amortisation; resolved lazily
                # below via the injected-delta of the stats record.
                delay_injected_ns=max(
                    0.0,
                    delay_ns
                    - max(0.0, state.overhead_pool_ns),
                ),
            )
        )
        del injected_before
        return delay_ns, cost

    engine._close_measure = traced_measure
    return trace
