"""Quartz configuration knobs.

Everything tunable about the emulator lives here, mirroring the paper's
configuration surface: target NVM latency and bandwidth, epoch sizes
(max for the monitor, min for the sync-triggered closes of Section 2.3),
the monitor wake interval, the counter-access backend (Section 3.2), the
"switched-off delay injection" diagnostic mode, and the write-emulation
model (pflush of Section 3.1 vs. the pcommit extension of Section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import QuartzError
from repro.quartz.tiers import (
    PLACEMENT_POLICIES,
    MemoryTier,
    validate_tier_list,
)
from repro.units import MILLISECOND


class EmulationMode(enum.Enum):
    """What kind of memory system Quartz emulates."""

    #: All application memory is NVM (Sections 2-3.2).
    PM = "pm"
    #: Two memory types: local DRAM (fast) + virtual NVM on the sibling
    #: socket (Section 3.3).
    TWO_MEMORY = "two-memory"
    #: N memory tiers: local DRAM plus an ordered list of emulated
    #: memories on the sibling socket, each with independent read/write
    #: latencies (the hybrid-memory generalization of Section 3.3).
    MULTI_TIER = "multi-tier"


class WriteModel(enum.Enum):
    """How persistent writes are emulated."""

    #: pflush: stall-wait per cache line (pessimistic, Section 3.1).
    PFLUSH = "pflush"
    #: clflushopt + pcommit: delays accumulate and are injected at the
    #: barrier, allowing independent writes to overlap (Section 6).
    PCOMMIT = "pcommit"


#: Library initialisation cost (Section 3.2): ~5.5 billion cycles.
INIT_COST_CYCLES = 5_500_000_000
#: Per-thread registration cost (Section 3.2): ~300,000 cycles.
THREAD_REGISTRATION_COST_CYCLES = 300_000
#: Epoch-processing cost excluding counter reads (Section 3.2 puts the
#: all-in rdpmc figure at ~4000 cycles, about half of which is counter
#: reading).
EPOCH_BASE_COST_CYCLES = 2_000


@dataclass
class QuartzConfig:
    """Full configuration of one Quartz attachment."""

    #: Target average NVM read latency (ns).  Must be >= the latency of
    #: the DRAM standing in for NVM.
    nvm_read_latency_ns: float = 400.0
    #: Target NVM bandwidth in bytes/ns (GB/s); None = unthrottled.
    nvm_bandwidth_gbps: Optional[float] = None
    #: Separate read/write bandwidth targets (GB/s) for asymmetric NVM —
    #: generally read bandwidth exceeds write bandwidth (Section 2.1).
    #: Requires hardware with the separate registers wired up; the
    #: paper's testbeds lacked them (footnote 2).
    nvm_read_bandwidth_gbps: Optional[float] = None
    nvm_write_bandwidth_gbps: Optional[float] = None
    #: Target NVM write latency for pflush (ns); None = no write delay.
    nvm_write_latency_ns: Optional[float] = None
    #: Emulation mode: PM everywhere, DRAM + virtual NVM, or N tiers.
    mode: EmulationMode = EmulationMode.PM
    #: Ordered tier list for MULTI_TIER mode.  Tier 0 is the local DRAM;
    #: tiers >= 1 are emulated memories (fastest first by convention).
    tiers: Optional[tuple[MemoryTier, ...]] = None
    #: Page-placement policy between emulated tiers ("static",
    #: "round-robin", or "hot-promote").
    placement_policy: str = "static"
    #: Static/hot-promote placement order: tier indices cycled across
    #: successive pmallocs (None = everything starts in the slowest tier).
    placement_order: Optional[tuple[int, ...]] = None
    #: Hot-page promotion threshold (cumulative accesses) for the
    #: "hot-promote" policy.
    promote_threshold_accesses: Optional[int] = None
    #: Write emulation model.
    write_model: WriteModel = WriteModel.PFLUSH
    #: Maximum (static) epoch length; the monitor interrupts threads whose
    #: epoch exceeds this (paper default 10 ms, Section 4.4 footnote 4).
    max_epoch_ns: float = 10.0 * MILLISECOND
    #: Minimum epoch length gating sync-triggered closes (Section 2.3).
    min_epoch_ns: float = 0.1 * MILLISECOND
    #: Monitor wake interval; None = max_epoch / 10.
    monitor_interval_ns: Optional[float] = None
    #: Counter access backend: "rdpmc" (direct) or "papi" (trapping).
    counter_backend: str = "rdpmc"
    #: Delay model: "stalls" (Eq. 2/3, MLP-aware) or "simple" (Eq. 1,
    #: every LLC miss counted as serialized — the strawman of Figure 2).
    latency_model: str = "stalls"
    #: False = "switched-off delay injection" overhead-measurement mode.
    injection_enabled: bool = True
    #: Charge the ~5.5e9-cycle library initialisation to the main thread.
    include_init_cost: bool = False
    #: Charge the ~300k-cycle per-thread registration cost.
    include_registration_cost: bool = True
    #: Signal number used by the monitor to interrupt threads.
    epoch_signal: int = 44
    #: Socket the monitor thread is pinned to.
    monitor_socket: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`QuartzError` on inconsistent settings."""
        if self.nvm_read_latency_ns <= 0:
            raise QuartzError(
                f"NVM read latency must be positive: {self.nvm_read_latency_ns}"
            )
        if self.nvm_bandwidth_gbps is not None and self.nvm_bandwidth_gbps <= 0:
            raise QuartzError(
                f"NVM bandwidth must be positive: {self.nvm_bandwidth_gbps}"
            )
        for name in ("nvm_read_bandwidth_gbps", "nvm_write_bandwidth_gbps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise QuartzError(f"{name} must be positive: {value}")
        asymmetric = (
            self.nvm_read_bandwidth_gbps is not None
            or self.nvm_write_bandwidth_gbps is not None
        )
        if asymmetric and (
            self.nvm_read_bandwidth_gbps is None
            or self.nvm_write_bandwidth_gbps is None
        ):
            raise QuartzError(
                "asymmetric throttling needs both read and write targets"
            )
        if self.nvm_write_latency_ns is not None and self.nvm_write_latency_ns < 0:
            raise QuartzError(
                f"NVM write latency must be non-negative: {self.nvm_write_latency_ns}"
            )
        if self.max_epoch_ns <= 0:
            raise QuartzError(f"max epoch must be positive: {self.max_epoch_ns}")
        if self.min_epoch_ns < 0:
            raise QuartzError(f"min epoch must be non-negative: {self.min_epoch_ns}")
        if self.min_epoch_ns > self.max_epoch_ns:
            raise QuartzError(
                f"min epoch {self.min_epoch_ns} exceeds max epoch {self.max_epoch_ns}"
            )
        if self.monitor_interval_ns is not None and self.monitor_interval_ns <= 0:
            raise QuartzError(
                f"monitor interval must be positive: {self.monitor_interval_ns}"
            )
        if self.counter_backend not in ("rdpmc", "papi"):
            raise QuartzError(
                f"unknown counter backend: {self.counter_backend!r} "
                "(expected 'rdpmc' or 'papi')"
            )
        if self.latency_model not in ("stalls", "simple"):
            raise QuartzError(
                f"unknown latency model: {self.latency_model!r} "
                "(expected 'stalls' or 'simple')"
            )
        if self.latency_model == "simple" and self.mode in (
            EmulationMode.TWO_MEMORY,
            EmulationMode.MULTI_TIER,
        ):
            raise QuartzError(
                "the Eq. 1 simple model has no local/remote split; "
                f"{self.mode.value} mode requires the stall model"
            )
        if not 1 <= self.epoch_signal <= 64:
            raise QuartzError(f"bad signal number: {self.epoch_signal}")
        self._validate_tiers()

    def _validate_tiers(self) -> None:
        if self.mode is not EmulationMode.MULTI_TIER:
            if self.tiers is not None:
                raise QuartzError(
                    "a tier list requires multi-tier mode "
                    f"(mode is {self.mode.value!r})"
                )
            return
        if self.tiers is None:
            raise QuartzError("multi-tier mode needs a tier list")
        validate_tier_list(self.tiers)
        if self.placement_policy not in PLACEMENT_POLICIES:
            raise QuartzError(
                f"unknown placement policy: {self.placement_policy!r} "
                f"(expected one of {PLACEMENT_POLICIES})"
            )
        if self.placement_policy == "hot-promote":
            if self.promote_threshold_accesses is None:
                raise QuartzError(
                    "hot-promote placement needs promote_threshold_accesses"
                )
            if self.promote_threshold_accesses <= 0:
                raise QuartzError(
                    "promotion threshold must be positive: "
                    f"{self.promote_threshold_accesses}"
                )
        if self.placement_order is not None:
            valid = range(1, len(self.tiers))
            for index in self.placement_order:
                if index not in valid:
                    raise QuartzError(
                        f"placement order names tier {index}; emulated "
                        f"tiers are {tuple(valid)}"
                    )

    @property
    def effective_monitor_interval_ns(self) -> float:
        """The monitor wake period actually used."""
        if self.monitor_interval_ns is not None:
            return self.monitor_interval_ns
        return self.max_epoch_ns / 10.0
