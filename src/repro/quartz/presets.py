"""NVM technology presets.

The paper motivates Quartz with the spread of candidate NVM technologies
(phase-change memory, memristors, STT-MRAM) whose latency/bandwidth
characteristics were still unsettled.  These presets capture the
projected envelopes commonly used in the NVM systems literature of the
period, so studies can be phrased as *"run this under PCM"* instead of
raw numbers.  Each preset converts into a ready
:class:`~repro.quartz.config.QuartzConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import QuartzError
from repro.quartz.config import EmulationMode, QuartzConfig, WriteModel


@dataclass(frozen=True)
class NvmTechnology:
    """Projected performance envelope of one NVM technology."""

    name: str
    description: str
    read_latency_ns: float
    write_latency_ns: float
    #: Aggregate bandwidth in GB/s; None = DRAM-class (unthrottled).
    bandwidth_gbps: Optional[float]

    def __post_init__(self) -> None:
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise QuartzError(f"latencies must be positive: {self}")
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise QuartzError(f"bandwidth must be positive: {self}")

    def quartz_config(
        self,
        mode: EmulationMode = EmulationMode.PM,
        write_model: WriteModel = WriteModel.PFLUSH,
        **overrides,
    ) -> QuartzConfig:
        """A QuartzConfig emulating this technology."""
        config = QuartzConfig(
            nvm_read_latency_ns=self.read_latency_ns,
            nvm_write_latency_ns=self.write_latency_ns,
            nvm_bandwidth_gbps=self.bandwidth_gbps,
            mode=mode,
            write_model=write_model,
        )
        if overrides:
            config = replace(config, **overrides)
            config.validate()
        return config


#: Phase-change memory: the paper era's leading candidate — reads a few
#: times DRAM, writes ~1 us, bandwidth well below DRAM.
PCM = NvmTechnology(
    name="pcm",
    description="phase-change memory (projected)",
    read_latency_ns=300.0,
    write_latency_ns=1000.0,
    bandwidth_gbps=5.0,
)

#: STT-MRAM: near-DRAM reads, moderately slower writes, good bandwidth.
STT_MRAM = NvmTechnology(
    name="stt-mram",
    description="spin-transfer-torque MRAM (projected)",
    read_latency_ns=150.0,
    write_latency_ns=300.0,
    bandwidth_gbps=15.0,
)

#: Memristor / ReRAM: the HP "The Machine" target technology.
MEMRISTOR = NvmTechnology(
    name="memristor",
    description="memristor / ReRAM (projected)",
    read_latency_ns=200.0,
    write_latency_ns=500.0,
    bandwidth_gbps=10.0,
)

#: A pessimistic far-NVM point (the paper sweeps latency out to 2 us).
SLOW_NVM = NvmTechnology(
    name="slow-nvm",
    description="pessimistic far-memory NVM",
    read_latency_ns=1000.0,
    write_latency_ns=2000.0,
    bandwidth_gbps=2.0,
)

ALL_TECHNOLOGIES: tuple[NvmTechnology, ...] = (
    STT_MRAM,
    MEMRISTOR,
    PCM,
    SLOW_NVM,
)

_BY_NAME = {technology.name: technology for technology in ALL_TECHNOLOGIES}


def technology_by_name(name: str) -> NvmTechnology:
    """Look up a preset by name."""
    key = name.strip().lower()
    if key not in _BY_NAME:
        known = ", ".join(sorted(_BY_NAME))
        raise QuartzError(f"unknown NVM technology {name!r}; known: {known}")
    return _BY_NAME[key]
