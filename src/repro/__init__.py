"""Reproduction of *Quartz: A Lightweight Performance Emulator for
Persistent Memory Software* (Volos et al., Middleware 2015).

The package layers, bottom to top:

* :mod:`repro.sim` — a deterministic discrete-event kernel;
* :mod:`repro.hw` — the paper's three dual-socket Xeon testbeds as
  simulated hardware (caches, memory controllers with thermal-throttle
  registers, performance counters, DVFS);
* :mod:`repro.os` — threads, scheduling, pthread synchronisation,
  signals, NUMA policy, and ``LD_PRELOAD``-style interposition;
* :mod:`repro.quartz` — **the paper's contribution**: the epoch-based
  latency emulator, bandwidth throttling, the persistent-memory API, and
  the two-memory virtual topology;
* :mod:`repro.workloads` — MemLat, STREAM, Multi-Threaded, MultiLat, a
  B+-tree KV store, PageRank, and Graph500-style BFS;
* :mod:`repro.validation` — the Conf_1/Conf_2 methodology and one driver
  per paper table/figure.

Quickstart::

    from repro import (IVY_BRIDGE, Machine, MemBatch, PatternKind,
                       Quartz, QuartzConfig, SimOS, Simulator,
                       calibrate_arch)

    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    quartz = Quartz(os, QuartzConfig(nvm_read_latency_ns=400.0),
                    calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()

    def app(ctx):
        region = ctx.pmalloc(1 << 32)
        yield MemBatch(region, 100_000, PatternKind.CHASE)

    os.create_thread(app)
    os.run_to_completion()
    print(sim.now, "ns of emulated NVM time")
"""

from repro.errors import (
    CalibrationError,
    DeadlockError,
    HardwareError,
    OsError,
    QuartzError,
    ReproError,
    SimulationError,
    UnsupportedFeatureError,
    ValidationError,
    WorkloadError,
)
from repro.hw import (
    ALL_ARCHS,
    HASWELL,
    IVY_BRIDGE,
    SANDY_BRIDGE,
    ArchSpec,
    Machine,
    MemoryRegion,
    PageSize,
    arch_by_name,
)
from repro.ops import (
    BarrierWait,
    Commit,
    Compute,
    CondNotify,
    CondWait,
    Flush,
    FlushOpt,
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    Sleep,
    SpawnThread,
    Spin,
)
from repro.os import Barrier, CondVar, Mutex, SimOS, SimThread, ThreadContext
from repro.quartz import (
    CalibrationData,
    EmulationMode,
    Quartz,
    QuartzConfig,
    QuartzStats,
    WriteModel,
    calibrate_arch,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ALL_ARCHS",
    "ArchSpec",
    "Barrier",
    "BarrierWait",
    "CalibrationData",
    "CalibrationError",
    "Commit",
    "Compute",
    "CondNotify",
    "CondVar",
    "CondWait",
    "DeadlockError",
    "EmulationMode",
    "Flush",
    "FlushOpt",
    "HASWELL",
    "HardwareError",
    "IVY_BRIDGE",
    "JoinThread",
    "Machine",
    "MemBatch",
    "MemoryRegion",
    "Mutex",
    "MutexLock",
    "MutexUnlock",
    "OsError",
    "PageSize",
    "PatternKind",
    "Quartz",
    "QuartzConfig",
    "QuartzError",
    "QuartzStats",
    "ReproError",
    "SANDY_BRIDGE",
    "SimOS",
    "SimThread",
    "SimulationError",
    "Simulator",
    "Sleep",
    "SpawnThread",
    "Spin",
    "ThreadContext",
    "UnsupportedFeatureError",
    "ValidationError",
    "WorkloadError",
    "WriteModel",
    "arch_by_name",
    "calibrate_arch",
]
