#!/usr/bin/env python3
"""Quickstart: emulate a 400 ns NVM and measure it from an application.

Builds a simulated Ivy Bridge testbed, attaches Quartz configured for a
400 ns / 15 GB/s NVM, runs a MemLat-style pointer chase over a 4 GiB
persistent allocation, and checks that the application-perceived latency
matches the target — the core promise of the paper.

Run:  python examples/quickstart.py
"""

from repro import (
    IVY_BRIDGE,
    Machine,
    MemBatch,
    PageSize,
    PatternKind,
    Quartz,
    QuartzConfig,
    SimOS,
    Simulator,
    calibrate_arch,
)
from repro.units import GIB


def main() -> None:
    target_latency_ns = 400.0
    target_bandwidth_gbps = 15.0

    # One-time, per-machine calibration (the paper's helper program).
    calibration = calibrate_arch(IVY_BRIDGE)
    print(f"calibrated {IVY_BRIDGE.model}:")
    print(f"  DRAM latency : {calibration.dram_local_ns:.1f} ns")
    print(f"  peak bandwidth: {calibration.peak_bandwidth:.1f} GB/s")

    # Build the simulated testbed and attach the emulator.
    sim = Simulator(seed=42)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=target_latency_ns,
            nvm_bandwidth_gbps=target_bandwidth_gbps,
        ),
        calibration=calibration,
    )
    quartz.attach()
    print(
        f"\nQuartz attached: emulating {target_latency_ns:.0f} ns NVM at "
        f"{target_bandwidth_gbps:.0f} GB/s"
    )

    # The application: unmodified apart from using pmalloc for NVM data.
    measured = {}

    def app(ctx):
        accesses = 500_000
        region = ctx.pmalloc(4 * GIB, page_size=PageSize.HUGE_2M, label="data")
        start = ctx.now_ns
        yield MemBatch(region, accesses, PatternKind.CHASE)
        measured["latency_ns"] = (ctx.now_ns - start) / accesses

    os.create_thread(app, name="app")
    os.run_to_completion()

    error = abs(measured["latency_ns"] - target_latency_ns) / target_latency_ns
    print(f"\napplication-perceived latency: {measured['latency_ns']:.1f} ns")
    print(f"emulation target             : {target_latency_ns:.1f} ns")
    print(f"emulation error              : {100 * error:.2f}%")

    stats = quartz.stats
    print(f"\nemulator statistics (Section 3.2):")
    print(f"  epochs closed       : {stats.epochs_total}")
    print(f"  monitor signals sent: {stats.signals_posted}")
    print(f"  delay injected      : {stats.delay_injected_ns / 1e6:.1f} ms")
    print(f"  processing overhead : {stats.overhead_ns / 1e6:.3f} ms")
    print(f"  feedback            : {stats.feedback()}")


if __name__ == "__main__":
    main()
