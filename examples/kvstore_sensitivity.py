#!/usr/bin/env python3
"""How sensitive is a key-value store to NVM latency?

The Section 4.7 sensitivity study as a user would run it: the B+-tree KV
store (MassTree stand-in) executes under Quartz across a range of NVM
read latencies; throughput is reported relative to DRAM.  The paper's
headline: throughput falls ~15% at 200 ns and almost 5x by 2 us.

Run:  python examples/kvstore_sensitivity.py
"""

from repro import SANDY_BRIDGE, QuartzConfig, calibrate_arch
from repro.validation.configs import run_conf1, run_native
from repro.workloads.kvstore import KvStoreConfig, kvstore_main_body

LATENCIES_NS = [200.0, 300.0, 500.0, 1000.0, 2000.0]


def main() -> None:
    workload = KvStoreConfig(puts_per_thread=40_000, gets_per_thread=40_000)

    def factory(out):
        return kvstore_main_body(workload, out)

    calibration = calibrate_arch(SANDY_BRIDGE)
    baseline = run_native(SANDY_BRIDGE, factory, seed=7).workload_result
    print(
        f"baseline (DRAM {calibration.dram_local_ns:.0f} ns): "
        f"{baseline.puts_per_second / 1e6:.2f} M puts/s, "
        f"{baseline.gets_per_second / 1e6:.2f} M gets/s "
        f"({baseline.verified_gets} lookups verified)"
    )
    print(f"\n{'NVM latency':>12} {'puts/s':>10} {'gets/s':>10} "
          f"{'puts rel':>9} {'gets rel':>9}")
    for latency in LATENCIES_NS:
        config = QuartzConfig(nvm_read_latency_ns=latency)
        result = run_conf1(
            SANDY_BRIDGE, factory, config, seed=7, calibration=calibration
        ).workload_result
        print(
            f"{latency:>9.0f} ns"
            f" {result.puts_per_second / 1e6:>9.2f}M"
            f" {result.gets_per_second / 1e6:>9.2f}M"
            f" {result.puts_per_second / baseline.puts_per_second:>9.2f}"
            f" {result.gets_per_second / baseline.gets_per_second:>9.2f}"
        )
    print(
        "\nReads collapse with latency (dependent tree walks + value "
        "fetches); puts stay flat because writes are posted — exactly why "
        "the paper adds pflush for persistent-write emulation."
    )


if __name__ == "__main__":
    main()
