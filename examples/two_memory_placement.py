#!/usr/bin/env python3
"""Data placement on a DRAM + NVM system (Section 3.3).

The question the two-memory mode exists to answer: *given fast-small DRAM
and slow-large NVM, where should each data structure live?*  A KV-store
shaped workload keeps a hot index and a cold value heap; we compare three
placements under Quartz's virtual topology on Ivy Bridge:

  1. everything in DRAM (malloc)        — the infeasible-at-scale ideal;
  2. index in DRAM, values in NVM       — the paper's guidance: "use
     malloc for frequently accessed structures, pmalloc for larger,
     less-frequently accessed data";
  3. everything in NVM (pmalloc)        — the naive port.

Run:  python examples/two_memory_placement.py
"""

from repro import (
    EmulationMode,
    IVY_BRIDGE,
    Machine,
    MemBatch,
    PageSize,
    PatternKind,
    Quartz,
    QuartzConfig,
    SimOS,
    Simulator,
    calibrate_arch,
)
from repro.units import GIB, MIB

NVM_LATENCY_NS = 600.0
OPERATIONS = 200_000
INDEX_BYTES = 48 * MIB   # hot: touched ~3x per op (tree walk)
VALUES_BYTES = 4 * GIB   # cold: touched once per op


def run_placement(index_in_nvm: bool, values_in_nvm: bool) -> float:
    sim = Simulator(seed=11)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=NVM_LATENCY_NS, mode=EmulationMode.TWO_MEMORY
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    elapsed = {}

    def app(ctx):
        alloc_index = ctx.pmalloc if index_in_nvm else ctx.malloc
        alloc_values = ctx.pmalloc if values_in_nvm else ctx.malloc
        index = alloc_index(INDEX_BYTES, page_size=PageSize.HUGE_2M,
                            label="index")
        values = alloc_values(VALUES_BYTES, page_size=PageSize.HUGE_2M,
                              label="values")
        start = ctx.now_ns
        for _ in range(10):  # batches keep epochs flowing
            yield MemBatch(
                index, 3 * OPERATIONS // 10, PatternKind.RANDOM,
                parallelism=2, compute_cycles_per_access=60,
                label="index-walk",
            )
            yield MemBatch(
                values, OPERATIONS // 10, PatternKind.RANDOM,
                label="value-fetch",
            )
        elapsed["ns"] = ctx.now_ns - start

    os.create_thread(app, name="app")
    os.run_to_completion()
    return elapsed["ns"]


def main() -> None:
    print(
        f"two-memory emulation on {IVY_BRIDGE.model}: DRAM "
        f"{IVY_BRIDGE.dram_local.avg_ns:.0f} ns, virtual NVM "
        f"{NVM_LATENCY_NS:.0f} ns\n"
    )
    placements = [
        ("index DRAM, values DRAM (ideal)", False, False),
        ("index DRAM, values NVM (recommended)", False, True),
        ("index NVM,  values NVM (naive port)", True, True),
    ]
    results = []
    for name, index_nvm, values_nvm in placements:
        elapsed = run_placement(index_nvm, values_nvm)
        results.append((name, elapsed))
        ops_per_s = OPERATIONS / elapsed * 1e9
        print(f"{name:40s} {elapsed / 1e6:8.1f} ms  ({ops_per_s / 1e6:.2f} M ops/s)")
    ideal = results[0][1]
    smart = results[1][1]
    naive = results[2][1]
    print(
        f"\nkeeping just the hot index in DRAM recovers "
        f"{100 * (naive - smart) / (naive - ideal):.0f}% of the gap "
        "between the naive port and the all-DRAM ideal —\n"
        "the data-placement trade-off the paper built the two-memory mode "
        "to let designers quantify."
    )


if __name__ == "__main__":
    main()
