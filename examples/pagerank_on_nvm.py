#!/usr/bin/env python3
"""PageRank on emulated NVM: the Figure 16(a) sensitivity curve.

Runs genuine power-iteration PageRank (real ranks, real convergence) on a
synthetic scale-free graph whose working set lives in emulated persistent
memory, across a range of NVM latencies, and renders the completion-time
curve as ASCII — the study a systems designer would run before committing
to an NVM part.

Run:  python examples/pagerank_on_nvm.py
"""

from repro import SANDY_BRIDGE, QuartzConfig, calibrate_arch
from repro.validation.configs import run_conf1, run_native
from repro.workloads.pagerank import PageRankConfig, default_graph, pagerank_body

LATENCIES_NS = [200.0, 300.0, 500.0, 1000.0, 2000.0]


def main() -> None:
    workload = PageRankConfig(max_iterations=8, tolerance=1e-15)
    graph = default_graph(workload)
    print(
        f"PageRank on {graph.vertex_count:,} vertices / "
        f"{graph.edge_count:,} arcs, {workload.max_iterations} iterations\n"
    )

    def factory(out):
        return pagerank_body(workload, out, graph=graph)

    calibration = calibrate_arch(SANDY_BRIDGE)
    baseline = run_native(SANDY_BRIDGE, factory, seed=5).workload_result
    print(
        f"DRAM baseline ({calibration.dram_local_ns:.0f} ns): "
        f"{baseline.elapsed_ns / 1e6:.0f} ms, top vertex "
        f"{baseline.top_vertex}"
    )
    print(f"\n{'NVM latency':>12} {'CT':>9} {'relative':>9}  curve")
    points = []
    for latency in LATENCIES_NS:
        config = QuartzConfig(nvm_read_latency_ns=latency)
        result = run_conf1(
            SANDY_BRIDGE, factory, config, seed=5, calibration=calibration
        ).workload_result
        relative = result.elapsed_ns / baseline.elapsed_ns
        points.append((latency, relative))
        bar = "#" * round(8 * relative)
        print(
            f"{latency:>9.0f} ns {result.elapsed_ns / 1e6:>6.0f} ms "
            f"{relative:>8.2f}x  {bar}"
        )
    print(
        "\nnon-linear degradation: modest until a few hundred ns, then "
        f"{points[-1][1]:.1f}x at {points[-1][0]:.0f} ns — the Figure 16(a) "
        "shape that argues for latency-tolerant data structures on NVM."
    )


if __name__ == "__main__":
    main()
