#!/usr/bin/env python3
"""Which NVM technology can your workload tolerate?

Runs the KV store under Quartz configured from the built-in NVM
technology presets (STT-MRAM, memristor/ReRAM, PCM, and a pessimistic
far-NVM point) and reports DRAM-relative throughput — the
"which-memory-do-we-buy" study the paper's introduction motivates.

Run:  python examples/technology_comparison.py
"""

from repro import IVY_BRIDGE, calibrate_arch
from repro.quartz.presets import ALL_TECHNOLOGIES
from repro.validation.configs import run_conf1, run_native
from repro.workloads.kvstore import KvStoreConfig, kvstore_main_body


def main() -> None:
    workload = KvStoreConfig(puts_per_thread=30_000, gets_per_thread=30_000)

    def factory(out):
        return kvstore_main_body(workload, out)

    calibration = calibrate_arch(IVY_BRIDGE)
    baseline = run_native(IVY_BRIDGE, factory, seed=9).workload_result
    print(
        f"KV store on {IVY_BRIDGE.model}; DRAM baseline "
        f"{baseline.gets_per_second / 1e6:.2f} M gets/s, "
        f"{baseline.puts_per_second / 1e6:.2f} M puts/s\n"
    )
    header = (
        f"{'technology':>11} {'read':>7} {'write':>7} {'bw':>7} "
        f"{'gets rel':>9} {'puts rel':>9}"
    )
    print(header)
    for technology in ALL_TECHNOLOGIES:
        config = technology.quartz_config()
        result = run_conf1(
            IVY_BRIDGE, factory, config, seed=9, calibration=calibration
        ).workload_result
        bandwidth = (
            f"{technology.bandwidth_gbps:.0f}G"
            if technology.bandwidth_gbps
            else "dram"
        )
        print(
            f"{technology.name:>11}"
            f" {technology.read_latency_ns:>5.0f}ns"
            f" {technology.write_latency_ns:>5.0f}ns"
            f" {bandwidth:>7}"
            f" {result.gets_per_second / baseline.gets_per_second:>9.2f}"
            f" {result.puts_per_second / baseline.puts_per_second:>9.2f}"
        )
    print(
        "\nSTT-MRAM-class parts are nearly transparent; PCM costs ~20% of "
        "read throughput;\na microsecond-class NVM halves it — exactly the "
        "design-space sensitivity Quartz exists to quantify before "
        "hardware exists."
    )


if __name__ == "__main__":
    main()
