#!/usr/bin/env python3
"""Persistent-write emulation: pflush vs. the pcommit model (Section 6).

A write-ahead log appends records to persistent memory.  Each append
persists several independent cache lines (the record's fields) and then
needs a persistence barrier before acknowledging.  Under the paper's
``pflush`` model every line stall-waits the full NVM write latency; under
the ``clflushopt``/``pcommit`` extension the flushes overlap and only the
barrier waits — the difference decides whether your log does 60k or 800k
appends per second.

Run:  python examples/persistent_writes.py
"""

from repro import (
    Commit,
    Compute,
    IVY_BRIDGE,
    Machine,
    Quartz,
    QuartzConfig,
    SimOS,
    Simulator,
    WriteModel,
    calibrate_arch,
)
from repro.units import MIB

NVM_WRITE_LATENCY_NS = 1000.0
RECORD_LINES = 6          # fields persisted per log record
APPENDS = 2_000
CPU_WORK_CYCLES = 400.0   # serialisation, checksum


def run_log(write_model: WriteModel) -> float:
    sim = Simulator(seed=3)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=200.0,
            nvm_write_latency_ns=NVM_WRITE_LATENCY_NS,
            write_model=write_model,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    elapsed = {}

    def log_writer(ctx):
        log_region = ctx.pmalloc(64 * MIB, label="wal")
        start = ctx.now_ns
        for _ in range(APPENDS):
            yield Compute(CPU_WORK_CYCLES)
            # Persist the record's independent lines...
            for _ in range(RECORD_LINES):
                yield from ctx.pflush(log_region, lines=1)
            # ...and the persistence barrier before acking.
            yield Commit()
        elapsed["ns"] = ctx.now_ns - start

    os.create_thread(log_writer, name="wal-writer")
    os.run_to_completion()
    return elapsed["ns"]


def main() -> None:
    print(
        f"write-ahead log: {APPENDS} appends x {RECORD_LINES} lines, "
        f"NVM write latency {NVM_WRITE_LATENCY_NS:.0f} ns\n"
    )
    results = {}
    for model in (WriteModel.PFLUSH, WriteModel.PCOMMIT):
        elapsed = run_log(model)
        results[model] = elapsed
        appends_per_s = APPENDS / elapsed * 1e9
        print(
            f"{model.value:8s}: {elapsed / 1e6:8.2f} ms total, "
            f"{elapsed / APPENDS:8.0f} ns/append, "
            f"{appends_per_s / 1e3:7.0f} k appends/s"
        )
    speedup = results[WriteModel.PFLUSH] / results[WriteModel.PCOMMIT]
    print(
        f"\nmodelling write parallelism (clflushopt + pcommit) speeds the "
        f"log up {speedup:.1f}x —\nthe Section 6 argument for extending "
        "Quartz beyond pessimistic pflush serialisation."
    )


if __name__ == "__main__":
    main()
